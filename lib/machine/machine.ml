module I = Dise_isa.Insn
module Op = Dise_isa.Opcode
module Reg = Dise_isa.Reg
module Image = Dise_isa.Program.Image

type expansion = {
  rsid : int;
  seq : I.t array;
}

type expander = pc:int -> I.t -> expansion option

exception Runtime_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Runtime_error s)) fmt

module Event = struct
  type origin =
    | App
    | Rep of { rsid : int; offset : int; len : int }

  type branch = {
    taken : bool;
    target : int;
    dise_internal : bool;
  }

  type t = {
    pc : int;
    insn : I.t;
    origin : origin;
    expansion_start : bool;
    mem_addr : int option;
    branch : branch option;
    fetched_new_pc : bool;
  }
end

(* The allocation-free twin of {!Event.t}: one mutable record per
   machine, overwritten by every executed instruction. [run_raw] hands
   it to the sink instead of building an [Event.t] (two option cells
   plus a record per dynamic instruction); {!step} still materializes
   the event for callers that want a value. *)
module Raw = struct
  type t = {
    mutable pc : int;
    mutable insn : I.t;
    mutable rsid : int;  (* -1 = application instruction *)
    mutable offset : int;
    mutable len : int;
    mutable expansion_start : bool;
    mutable fetched_new_pc : bool;
    mutable mem_addr : int;  (* effective address, or [no_mem] *)
    mutable branch : int;  (* -1 = none; bit 0 = taken, bit 1 = dise_internal *)
    mutable target : int;
  }

  (* Sentinel for "no memory access"; addresses are 32-bit masked, so
     [min_int] can never collide. *)
  let no_mem = min_int

  let make () =
    {
      pc = 0;
      insn = I.Nop;
      rsid = -1;
      offset = 0;
      len = 0;
      expansion_start = false;
      fetched_new_pc = false;
      mem_addr = no_mem;
      branch = -1;
      target = 0;
    }
end

let no_mem = Raw.no_mem

(* --- superblock JIT ------------------------------------------------------ *)

(* Once an application PC has been dispatched [threshold] times, the
   static code reachable from it — with every expansion already
   performed — is flattened into a contiguous arena of parallel arrays
   (the superblock). Executing from the arena costs zero per-fetch
   matching, hashing, or allocation: the expander is consulted only at
   compile time. Conditional branches are recorded fall-through; a
   taken branch (or any application-level transfer) is a side exit
   back to the dispatcher. Soundness is generation-stamped: the engine
   bumps [generation] on any production-set swap or PT/RT write, and a
   mismatch observed at the next application-instruction boundary
   retires every superblock at once (see doc/jit.md). *)
type jit = {
  threshold : int;
  generation : int ref;  (* owned by the engine; [ref 0] when detached *)
  mutable cur_gen : int;
  jit_base : int;  (* image base, for the dense slot arithmetic *)
  (* Identity of the text the arena was compiled over. A state may be
     re-adopted by a later machine ([adopt_jit]) only when its image
     text is physically the same array — the arena stores absolute
     PCs, fall-throughs and decoded register indices, all functions of
     the text. *)
  text : I.t array;
  for_dense : bool;
  slot_block : int array;  (* dense: slot -> block id; -1 unknown, -2 never *)
  slot_count : int array;
  sparse_block : (int, int) Hashtbl.t;  (* sparse images: pc -> block id *)
  sparse_count : (int, int) Hashtbl.t;
  (* block table: block id -> arena [start, start+len) *)
  mutable blk_start : int array;
  mutable blk_len : int array;
  mutable n_blocks : int;
  (* the arena: one entry per post-expansion dynamic-instruction slot,
     as parallel arrays (no per-entry record, no per-fetch pointer
     chase beyond the instruction itself) *)
  mutable a_insn : I.t array;
  mutable a_pc : int array;  (* application PC of the (trigger) instruction *)
  mutable a_size : int array;  (* byte size of the application instruction *)
  mutable a_rsid : int array;  (* -1 = application instruction *)
  mutable a_off : int array;  (* DISEPC within the sequence *)
  mutable a_len : int array;  (* sequence length (0 for app entries) *)
  mutable a_base : int array;  (* arena index of the sequence's offset 0 *)
  mutable a_flags : int array;
  (* Micro-op form consumed by the event-free [run] loop: the
     instruction is decoded once at compile time into a packed int
     (opcode, flags, register indices) plus an immediate and the
     precomputed application fall-through PC, so the hot loop never
     inspects an [I.t] constructor or boxes a register. *)
  mutable a_uop : int array;
  mutable a_imm : int array;
  mutable a_fall : int array;  (* pc + size *)
  (* Exclusive prefix sums over the arena, one slot longer than the
     entry arrays: [c_app.(i)] counts [f_app] entries in [0, i),
     [c_est.(i)] counts [f_estart] entries. The run loop reconstructs
     its counters from differences of these instead of updating
     anything per instruction. *)
  mutable c_app : int array;
  mutable c_est : int array;
  mutable a_used : int;
  mutable compiles : int;
  mutable hits : int;
  mutable invalidations : int;
}

(* Arena entry flags. [f_app] marks an application-instruction
   boundary (a fresh fetch: I-cache + PT are touched); [f_estart] the
   first instruction of an expansion; [f_inseq] replacement-sequence
   membership (DISE-internal control is legal); [f_last] an entry
   whose [Next] completes the application instruction. *)
let f_app = 1
let f_estart = 2
let f_inseq = 4
let f_last = 8

let default_jit_threshold = 8
let jit_max_block_app = 4096

type t = {
  image : Image.t;
  insns : I.t array;  (* predecoded text: [Image.raw_insns image] *)
  dense : bool;       (* [Image.is_dense image]: size 4 everywhere *)
  mem : Memory.t;
  regs : Regfile.t;
  expander : expander;
  mutable pc : int;
  mutable disepc : int;
  mutable cur : expansion option;
  mutable cur_size : int;  (* byte size of the current application insn *)
  mutable halted : bool;
  mutable executed : int;
  mutable app_fetched : int;
  mutable expansions : int;
  (* Scratch output of the execution core, read once by the caller
     (event assembly or the raw sink): filling mutable fields instead
     of returning a value keeps the hot path allocation-free. *)
  raw : Raw.t;
  mutable jit : jit option;
  (* Step-mode superblock cursor: the next arena entry to execute is
     [jit_ix] while [jit_ix < jit_end]; equal fields mean "not inside
     a block". *)
  mutable jit_ix : int;
  mutable jit_end : int;
}

let no_expander ~pc:_ _ = None

let default_sp = 0x07FFFF00

let create ?(expander = no_expander) ?(entry = "main") image =
  let pc =
    match Image.symbol image entry with
    | Some a -> a
    | None -> Image.base image
  in
  let regs = Regfile.create () in
  Regfile.set regs Reg.sp default_sp;
  {
    image;
    insns = Image.raw_insns image;
    dense = Image.is_dense image;
    mem = Memory.create ();
    regs;
    expander;
    pc;
    disepc = 0;
    cur = None;
    cur_size = 4;
    halted = false;
    executed = 0;
    app_fetched = 0;
    expansions = 0;
    raw = Raw.make ();
    jit = None;
    jit_ix = 0;
    jit_end = 0;
  }

let image t = t.image
let memory t = t.mem
let regs t = t.regs
let pc t = t.pc
let disepc t = t.disepc
let halted t = t.halted
let executed t = t.executed
let app_fetched t = t.app_fetched
let expansions t = t.expansions
let set_dise_reg t n v = Regfile.set t.regs (Reg.d n) v
let set_reg t r v = Regfile.set t.regs r v
let exit_code t = Regfile.get t.regs (Reg.r 2)
let raw t = t.raw

let enable_jit ?(threshold = default_jit_threshold) ?(generation = ref 0) t =
  let threshold = max 1 threshold in
  let n = if t.dense then Array.length t.insns else 0 in
  t.jit <-
    Some
      {
        threshold;
        generation;
        cur_gen = !generation;
        jit_base = Image.base t.image;
        text = t.insns;
        for_dense = t.dense;
        slot_block = Array.make (max n 1) (-1);
        slot_count = Array.make (max n 1) 0;
        sparse_block = Hashtbl.create (if n = 0 then 1024 else 1);
        sparse_count = Hashtbl.create (if n = 0 then 1024 else 1);
        blk_start = Array.make 16 0;
        blk_len = Array.make 16 0;
        n_blocks = 0;
        a_insn = Array.make 4096 I.Nop;
        a_pc = Array.make 4096 0;
        a_size = Array.make 4096 0;
        a_rsid = Array.make 4096 0;
        a_off = Array.make 4096 0;
        a_len = Array.make 4096 0;
        a_base = Array.make 4096 0;
        a_uop = Array.make 4096 0;
        a_imm = Array.make 4096 0;
        a_fall = Array.make 4096 0;
        a_flags = Array.make 4096 0;
        c_app = Array.make 4097 0;
        c_est = Array.make 4097 0;
        a_used = 0;
        compiles = 0;
        hits = 0;
        invalidations = 0;
      }

type jit_state = jit

let jit_state t = t.jit

(* Reuse another machine's compiled traces. Sound only over the same
   image text (checked physically) — the generation stamp already
   covers production-set drift, and register/memory state lives in the
   adopting machine, not the arena. Compile counts, hit counts and hot
   slots carry over, which is the point: a fresh machine over a warmed
   state starts at steady state instead of re-earning every trace. *)
let adopt_jit t js =
  if js.text == t.insns && js.for_dense = t.dense
     && js.jit_base = Image.base t.image
  then begin
    t.jit <- Some js;
    t.jit_ix <- 0;
    t.jit_end <- 0;
    true
  end
  else false

let jit_enabled t = t.jit <> None
let jit_compiles t = match t.jit with None -> 0 | Some j -> j.compiles
let jit_hits t = match t.jit with None -> 0 | Some j -> j.hits

let jit_invalidations t =
  match t.jit with None -> 0 | Some j -> j.invalidations

(* Result of executing one instruction. *)
type flow =
  | Next
  | App_goto of int
  | Dise_goto of int
  | Stop

let target_addr = function
  | I.Abs a -> a
  | I.Lab l -> fail "unresolved label %s at runtime" l

(* Execute [insn]; [in_seq] tells whether we are inside a replacement
   sequence (DISE-internal control is only legal there). The return
   address for calls is the application-level fall-through, i.e. the
   address after the (possibly expanded) trigger. Memory address and
   branch outcome are reported through [t.raw]. *)
let exec_one t insn ~in_seq =
  let get r = Regfile.get t.regs r in
  let set r v = Regfile.set t.regs r v in
  let r = t.raw in
  r.Raw.mem_addr <- no_mem;
  r.Raw.branch <- -1;
  match insn with
  | I.Rop (op, a, b, c) ->
    set c (Op.eval_rop op (get a) (get b));
    Next
  | I.Ropi (op, a, v, c) ->
    set c (Op.eval_rop op (get a) v);
    Next
  | I.Lda (base, off, rd) ->
    set rd (get base + off);
    Next
  | I.Lui (v, rd) ->
    set rd (v lsl 16);
    Next
  | I.Mem (mop, base, off, data) ->
    let addr = Op.mask32 (get base + off) in
    r.Raw.mem_addr <- addr;
    (match mop with
    | Op.Ldq -> set data (Memory.read_s32 t.mem addr)
    | Op.Ldbu -> set data (Memory.read_u8 t.mem addr)
    | Op.Stq -> Memory.write_u32 t.mem addr (Op.mask32 (get data))
    | Op.Stb -> Memory.write_u8 t.mem addr (get data));
    Next
  | I.Br (bop, r0, tgt) ->
    let target = target_addr tgt in
    let taken = Op.eval_bop bop (get r0) in
    r.Raw.branch <- (if taken then 1 else 0);
    r.Raw.target <- target;
    if taken then App_goto target else Next
  | I.Jmp tgt ->
    let target = target_addr tgt in
    r.Raw.branch <- 1;
    r.Raw.target <- target;
    App_goto target
  | I.Jal tgt ->
    let target = target_addr tgt in
    set Reg.ra (t.pc + t.cur_size);
    r.Raw.branch <- 1;
    r.Raw.target <- target;
    App_goto target
  | I.Jr r0 ->
    let target = Op.mask32 (get r0) in
    r.Raw.branch <- 1;
    r.Raw.target <- target;
    App_goto target
  | I.Jalr (r0, rd) ->
    let target = Op.mask32 (get r0) in
    set rd (t.pc + t.cur_size);
    r.Raw.branch <- 1;
    r.Raw.target <- target;
    App_goto target
  | I.Dbr (bop, r0, off) ->
    if not in_seq then fail "DISE branch outside replacement sequence";
    let taken = Op.eval_bop bop (get r0) in
    r.Raw.branch <- (if taken then 3 else 2);
    r.Raw.target <- off;
    if taken then Dise_goto off else Next
  | I.Djmp off ->
    if not in_seq then fail "DISE jump outside replacement sequence";
    r.Raw.branch <- 3;
    r.Raw.target <- off;
    Dise_goto off
  | I.Codeword _ ->
    if in_seq then fail "codeword inside replacement sequence (recursion)"
    else fail "codeword at 0x%x matched no production" t.pc
  | I.Nop -> Next
  | I.Halt -> Stop

let advance_app t = t.pc <- t.pc + t.cur_size

let finish_sequence t =
  t.cur <- None;
  t.disepc <- 0;
  advance_app t

(* Execute the replacement instruction at the current DISEPC, leaving
   the step's description in [t.raw]. *)
let step_in_sequence_core t (e : expansion) ~expansion_start =
  let len = Array.length e.seq in
  let offset = t.disepc in
  let insn = e.seq.(offset) in
  let flow = exec_one t insn ~in_seq:true in
  let r = t.raw in
  r.Raw.pc <- t.pc;
  r.Raw.insn <- insn;
  r.Raw.rsid <- e.rsid;
  r.Raw.offset <- offset;
  r.Raw.len <- len;
  r.Raw.expansion_start <- expansion_start;
  r.Raw.fetched_new_pc <- expansion_start;
  (match flow with
  | Next ->
    t.disepc <- offset + 1;
    if t.disepc >= len then finish_sequence t
  | App_goto target ->
    t.cur <- None;
    t.disepc <- 0;
    t.pc <- target
  | Dise_goto d ->
    if d < 0 || d > len then
      fail "DISE transfer to offset %d outside sequence of length %d" d len;
    t.disepc <- d;
    if d = len then finish_sequence t
  | Stop -> t.halted <- true);
  t.executed <- t.executed + 1

let interrupt t =
  let saved = (t.pc, t.disepc) in
  t.cur <- None;
  t.jit_ix <- 0;
  t.jit_end <- 0;
  saved

let resume t ~pc ~disepc =
  t.pc <- pc;
  t.disepc <- disepc;
  t.cur <- None;
  t.jit_ix <- 0;
  t.jit_end <- 0;
  t.halted <- false

(* One interpreted dynamic instruction: fills [t.raw], returns false
   once halted. *)
let step_core t =
  if t.halted then false
  else
    match t.cur with
    | Some e when t.disepc < Array.length e.seq ->
      step_in_sequence_core t e ~expansion_start:false;
      true
    | Some _ | None ->
      (* Application-level fetch: predecoded text, O(1) for dense
         images (no per-step hashtable probe). *)
      let idx = Image.find_index t.image t.pc in
      if idx < 0 then fail "PC 0x%x outside text" t.pc
      else begin
        let insn = Array.unsafe_get t.insns idx in
        t.cur_size <- (if t.dense then 4 else Image.size_of_index t.image idx);
        t.app_fetched <- t.app_fetched + 1;
        match t.expander ~pc:t.pc insn with
        | Some e ->
          if Array.length e.seq = 0 then
            fail "empty replacement sequence for 0x%x" t.pc;
          t.expansions <- t.expansions + 1;
          t.cur <- Some e;
          (* A restored DISEPC (interrupt resumption) skips the first
             instructions of the sequence; normally it is 0. *)
          if t.disepc >= Array.length e.seq then t.disepc <- 0;
          step_in_sequence_core t e ~expansion_start:true;
          true
        | None ->
          t.disepc <- 0;
          let flow = exec_one t insn ~in_seq:false in
          let r = t.raw in
          r.Raw.pc <- t.pc;
          r.Raw.insn <- insn;
          r.Raw.rsid <- -1;
          r.Raw.offset <- 0;
          r.Raw.len <- 0;
          r.Raw.expansion_start <- false;
          r.Raw.fetched_new_pc <- true;
          (match flow with
          | Next -> advance_app t
          | App_goto target -> t.pc <- target
          | Dise_goto _ -> assert false
          | Stop -> t.halted <- true);
          t.executed <- t.executed + 1;
          true
      end

(* --- superblock compilation and execution -------------------------------- *)

let ensure_capacity j n =
  let cap = Array.length j.a_pc in
  if j.a_used + n > cap then begin
    let ncap = max (2 * cap) (j.a_used + n) in
    let grow a =
      let b = Array.make ncap 0 in
      Array.blit a 0 b 0 j.a_used;
      b
    in
    let insns = Array.make ncap I.Nop in
    Array.blit j.a_insn 0 insns 0 j.a_used;
    j.a_insn <- insns;
    j.a_pc <- grow j.a_pc;
    j.a_size <- grow j.a_size;
    j.a_rsid <- grow j.a_rsid;
    j.a_off <- grow j.a_off;
    j.a_len <- grow j.a_len;
    j.a_base <- grow j.a_base;
    j.a_flags <- grow j.a_flags;
    j.a_uop <- grow j.a_uop;
    j.a_imm <- grow j.a_imm;
    j.a_fall <- grow j.a_fall;
    let grow1 a =
      let b = Array.make (ncap + 1) 0 in
      Array.blit a 0 b 0 (j.a_used + 1);
      b
    in
    j.c_app <- grow1 j.c_app;
    j.c_est <- grow1 j.c_est
  end

exception Stop_compile

(* A trace ends at ANY application-level transfer, conditional
   branches included. Compiling through a conditional (recording it
   fall-through, superblock-style) looks attractive, but in branchy
   code it flattens long speculative tails past frequently-taken
   branches — compile time and arena space proportional to code that
   never executes, which made one-shot pipeline runs measurably
   SLOWER with the JIT than without. Ending at the branch makes every
   block an app-level basic block: each compiled entry executes every
   time the block is entered, so compile cost tracks the hot footprint
   and nothing else. Straight-line code is unaffected (blocks still
   run to [jit_max_block_app]); successor blocks chain through one
   dispatch probe. *)
let ends_straight_line = function
  | I.Jmp _ | I.Jal _ | I.Jr _ | I.Jalr _ | I.Halt | I.Codeword _ | I.Br _ ->
    true
  | _ -> false

(* Is [pc] already the head of a compiled block? Traces run through
   conditional branches (side exits), so without a stop rule every hot
   branch target would re-flatten the same shared tail — overlapping
   copies that cost quadratic arena space and compile time. Ending a
   walk at an existing head instead chains blocks through dispatch:
   one slot/hashtable probe per transition, no duplicated entries. *)
let compiled_head t j pc =
  if t.dense then begin
    let off = pc - j.jit_base in
    let idx = off lsr 2 in
    off >= 0
    && off land 3 = 0
    && idx < Array.length j.slot_block
    && Array.unsafe_get j.slot_block idx >= 0
  end
  else match Hashtbl.find_opt j.sparse_block pc with
    | Some b -> b >= 0
    | None -> false

(* --- micro-op encoding ---------------------------------------------------

   Arena entries carry a compile-time-decoded form of the instruction:

     a_uop  = code | flags << 6 | x << 12 | z << 18 | y << 24
     a_imm  = immediate / branch target / DISE offset
     a_fall = application fall-through PC (pc + size)

   where [x]/[y] are source register indices, [z] the destination
   index (0 = the hardwired-zero register: reads are correct because
   index 0 is never written; writes are dropped), and [code] selects
   an arm of the flat integer dispatch in [exec_uop_body]. Decoding
   happens once per compiled entry, so the hot loop performs zero
   per-fetch matching on [I.t] and never boxes a register. *)

let u_halt = 1
let u_cw_app = 2       (* unmatched codeword: fail like the interpreter *)
let u_cw_seq = 3
let u_dbr_out = 4      (* DISE control outside a replacement sequence *)
let u_djmp_out = 5
let u_rop = 8          (* .. u_rop + 13, reg-reg ALU *)
let u_ropi = 24        (* .. u_ropi + 13, reg-imm ALU *)
let u_lda = 38
let u_lui = 39
let u_ldq = 40
let u_ldbu = 41
let u_stq = 42
let u_stb = 43
let u_br = 44          (* .. u_br + 5, conditional application branch *)
let u_jmp = 50
let u_jal = 51
let u_jr = 52
let u_jalr = 53
let u_dbr = 54         (* .. u_dbr + 5, DISE-internal branch *)
let u_djmp = 60

let rop_code : Op.rop -> int = function
  | Op.Add -> 0 | Op.Sub -> 1 | Op.Mul -> 2
  | Op.And_ -> 3 | Op.Or_ -> 4 | Op.Xor -> 5
  | Op.Sll -> 6 | Op.Srl -> 7 | Op.Sra -> 8
  | Op.Slt -> 9 | Op.Sltu -> 10
  | Op.Cmpeq -> 11 | Op.Cmplt -> 12 | Op.Cmple -> 13

let bop_code : Op.bop -> int = function
  | Op.Beq -> 0 | Op.Bne -> 1 | Op.Blt -> 2
  | Op.Bge -> 3 | Op.Ble -> 4 | Op.Bgt -> 5

let ra_index = Reg.index Reg.ra

(* Decode one instruction. Raises (via {!target_addr}) on an
   unresolved label, exactly where the interpreter would — the caller
   turns that into [Stop_compile] so the block ends before the
   instruction and the interpreter surfaces the error on reaching
   it. *)
let uop_of_insn insn ~flags =
  let f = flags lsl 6 in
  let x r = Reg.index r lsl 12 in
  let z r = Reg.index r lsl 18 in
  let y r = Reg.index r lsl 24 in
  let inseq = flags land f_inseq <> 0 in
  match insn with
  | I.Nop -> (f, 0)
  | I.Halt -> (u_halt lor f, 0)
  | I.Rop (op, a, b, c) ->
    ((u_rop + rop_code op) lor f lor x a lor y b lor z c, 0)
  | I.Ropi (op, a, v, c) -> ((u_ropi + rop_code op) lor f lor x a lor z c, v)
  | I.Lda (base, off, rd) -> (u_lda lor f lor x base lor z rd, off)
  | I.Lui (v, rd) -> (u_lui lor f lor z rd, v)
  | I.Mem (mop, base, off, data) ->
    let code =
      match mop with
      | Op.Ldq -> u_ldq
      | Op.Ldbu -> u_ldbu
      | Op.Stq -> u_stq
      | Op.Stb -> u_stb
    in
    (code lor f lor x base lor z data, off)
  | I.Br (bop, r0, tgt) ->
    ((u_br + bop_code bop) lor f lor x r0, target_addr tgt)
  | I.Jmp tgt -> (u_jmp lor f, target_addr tgt)
  | I.Jal tgt -> (u_jal lor f, target_addr tgt)
  | I.Jr r0 -> (u_jr lor f lor x r0, 0)
  | I.Jalr (r0, rd) -> (u_jalr lor f lor x r0 lor z rd, 0)
  | I.Dbr (bop, r0, d) ->
    if inseq then ((u_dbr + bop_code bop) lor f lor x r0, d)
    else (u_dbr_out lor f, 0)
  | I.Djmp d -> if inseq then (u_djmp lor f, d) else (u_djmp_out lor f, 0)
  | I.Codeword _ -> ((if inseq then u_cw_seq else u_cw_app) lor f, 0)

(* Flatten the static code reachable by fall-through from [start_pc]
   into the arena; returns the new block id, or -1 when nothing could
   be compiled (first instruction off-image, erroring, or expanding to
   an empty sequence — the interpreter raises the identical error when
   it gets there). The walk stops before any instruction whose
   expansion cannot be computed, so compilation never raises an error
   the interpreter would only reach later (or not at all). The
   expander must be pure and idempotent for the PCs walked — true of
   the memoizing engine; the machine never compiles through a mutated
   fuzz expander because those sides never enable the JIT. *)
let compile_block t j start_pc =
  let first = j.a_used in
  let append insn ~pc ~size ~rsid ~off ~len ~base ~flags ~uop ~imm =
    ensure_capacity j 1;
    let i = j.a_used in
    j.a_insn.(i) <- insn;
    j.a_pc.(i) <- pc;
    j.a_size.(i) <- size;
    j.a_rsid.(i) <- rsid;
    j.a_off.(i) <- off;
    j.a_len.(i) <- len;
    j.a_base.(i) <- base;
    j.a_flags.(i) <- flags;
    j.a_uop.(i) <- uop;
    j.a_imm.(i) <- imm;
    j.a_fall.(i) <- pc + size;
    j.c_app.(i + 1) <- j.c_app.(i) + (flags land f_app);
    j.c_est.(i + 1) <- j.c_est.(i) + ((flags land f_estart) lsr 1);
    j.a_used <- i + 1
  in
  let pc = ref start_pc in
  let napp = ref 0 in
  (try
     while !napp < jit_max_block_app do
       let idx = Image.find_index t.image !pc in
       if idx < 0 then raise Stop_compile;
       let insn = Array.unsafe_get t.insns idx in
       let size = if t.dense then 4 else Image.size_of_index t.image idx in
       (match t.expander ~pc:!pc insn with
       | exception _ -> raise Stop_compile
       | None ->
         (* An unmatched codeword is included: executing it raises
            exactly the error the interpreter would. *)
         let flags = f_app lor f_last in
         let uop, imm =
           match uop_of_insn insn ~flags with
           | u -> u
           | exception Runtime_error _ -> raise Stop_compile
         in
         append insn ~pc:!pc ~size ~rsid:(-1) ~off:0 ~len:0 ~base:j.a_used
           ~flags ~uop ~imm;
         incr napp;
         if ends_straight_line insn then raise Stop_compile
       | Some e ->
         let len = Array.length e.seq in
         if len = 0 then raise Stop_compile;
         (* Decode the whole sequence before appending anything, so a
            mid-sequence decode failure (unresolved label) cannot
            leave a truncated expansion in the arena. *)
         let flags_of off =
           f_inseq
           lor (if off = 0 then f_app lor f_estart else 0)
           lor (if off = len - 1 then f_last else 0)
         in
         let uops =
           match
             Array.init len (fun off ->
                 uop_of_insn e.seq.(off) ~flags:(flags_of off))
           with
           | u -> u
           | exception Runtime_error _ -> raise Stop_compile
         in
         let base = j.a_used in
         for off = 0 to len - 1 do
           let uop, imm = uops.(off) in
           append e.seq.(off) ~pc:!pc ~size ~rsid:e.rsid ~off ~len ~base
             ~flags:(flags_of off) ~uop ~imm
         done;
         incr napp;
         if ends_straight_line e.seq.(len - 1) then raise Stop_compile);
       pc := !pc + size;
       if compiled_head t j !pc then raise Stop_compile
     done
   with Stop_compile -> ());
  let n = j.a_used - first in
  if n = 0 then -1
  else begin
    if j.n_blocks >= Array.length j.blk_start then begin
      let ncap = 2 * Array.length j.blk_start in
      let grow a =
        let b = Array.make ncap 0 in
        Array.blit a 0 b 0 j.n_blocks;
        b
      in
      j.blk_start <- grow j.blk_start;
      j.blk_len <- grow j.blk_len
    end;
    let b = j.n_blocks in
    j.blk_start.(b) <- first;
    j.blk_len.(b) <- n;
    j.n_blocks <- b + 1;
    j.compiles <- j.compiles + 1;
    b
  end

(* Retire every superblock: the production set (or a PT/RT entry)
   changed, so all flattened expansions are suspect. Counts and block
   indices restart cold; hot traces re-earn compilation under the new
   generation. *)
let jit_reset t j =
  j.invalidations <- j.invalidations + j.n_blocks;
  j.n_blocks <- 0;
  j.a_used <- 0;
  Array.fill j.slot_block 0 (Array.length j.slot_block) (-1);
  Array.fill j.slot_count 0 (Array.length j.slot_count) 0;
  Hashtbl.reset j.sparse_block;
  Hashtbl.reset j.sparse_count;
  j.cur_gen <- !(j.generation);
  t.jit_ix <- 0;
  t.jit_end <- 0

(* Block lookup at an application-instruction boundary (cur drained,
   DISEPC 0). Returns the block id to execute, or -1 to interpret this
   fetch. Compiles once the slot's dispatch count reaches the
   threshold. [hits] counts dispatches served by an already-compiled
   block. *)
let jit_dispatch t j =
  if !(j.generation) <> j.cur_gen then jit_reset t j;
  let pc = t.pc in
  if t.dense then begin
    let off = pc - j.jit_base in
    let idx = off lsr 2 in
    if off >= 0 && off land 3 = 0 && idx < Array.length j.slot_block then begin
      let b = Array.unsafe_get j.slot_block idx in
      if b >= 0 then begin
        j.hits <- j.hits + 1;
        b
      end
      else if b = -2 then -1
      else begin
        let c = Array.unsafe_get j.slot_count idx + 1 in
        Array.unsafe_set j.slot_count idx c;
        if c < j.threshold then -1
        else begin
          let b = compile_block t j pc in
          j.slot_block.(idx) <- (if b < 0 then -2 else b);
          b
        end
      end
    end
    else -1
  end
  else
    match Hashtbl.find_opt j.sparse_block pc with
    | Some b when b >= 0 ->
      j.hits <- j.hits + 1;
      b
    | Some _ -> -1
    | None ->
      let c =
        (match Hashtbl.find_opt j.sparse_count pc with
        | Some c -> c
        | None -> 0)
        + 1
      in
      Hashtbl.replace j.sparse_count pc c;
      if c < j.threshold then -1
      else begin
        let b = compile_block t j pc in
        Hashtbl.replace j.sparse_block pc (if b < 0 then -2 else b);
        b
      end

(* Execute arena entry [i]; returns the next arena index, or -1 when
   the block was exited (machine state — pc, disepc, cur — is left at
   a consistent boundary either way). *)
let exec_entry t j i =
  let insn = Array.unsafe_get j.a_insn i in
  let flags = Array.unsafe_get j.a_flags i in
  let pc = Array.unsafe_get j.a_pc i in
  t.pc <- pc;
  t.cur_size <- Array.unsafe_get j.a_size i;
  if flags land f_app <> 0 then begin
    t.app_fetched <- t.app_fetched + 1;
    if flags land f_estart <> 0 then t.expansions <- t.expansions + 1
  end;
  let flow = exec_one t insn ~in_seq:(flags land f_inseq <> 0) in
  let r = t.raw in
  r.Raw.pc <- pc;
  r.Raw.insn <- insn;
  r.Raw.rsid <- Array.unsafe_get j.a_rsid i;
  r.Raw.offset <- Array.unsafe_get j.a_off i;
  r.Raw.len <- Array.unsafe_get j.a_len i;
  r.Raw.expansion_start <- flags land f_estart <> 0;
  r.Raw.fetched_new_pc <- flags land f_app <> 0;
  let next =
    match flow with
    | Next ->
      if flags land f_last <> 0 then begin
        t.disepc <- 0;
        t.pc <- pc + t.cur_size;
        i + 1
      end
      else begin
        t.disepc <- Array.unsafe_get j.a_off i + 1;
        i + 1
      end
    | App_goto target ->
      t.cur <- None;
      t.disepc <- 0;
      t.pc <- target;
      -1
    | Dise_goto d ->
      let len = Array.unsafe_get j.a_len i in
      if d < 0 || d > len then
        fail "DISE transfer to offset %d outside sequence of length %d" d len;
      if d = len then begin
        t.disepc <- 0;
        t.pc <- pc + t.cur_size;
        Array.unsafe_get j.a_base i + len
      end
      else begin
        t.disepc <- d;
        Array.unsafe_get j.a_base i + d
      end
    | Stop ->
      t.halted <- true;
      -1
  in
  t.executed <- t.executed + 1;
  next

(* [exec_entry]'s event-free twin for the full-speed [run] path:
   identical machine-state transitions, counters, and failure
   messages, but no [t.raw] bookkeeping — [run] discards the stream,
   and at ~15 ns/instruction the ten raw stores are a measurable
   fraction of the budget. Also folds in the generation side-exit
   (checked at application boundaries, where state is consistent).
   Mid-sequence [disepc] maintenance is elided: the fast path never
   leaves a block mid-sequence except through [App_goto] and
   [Dise_goto], both of which write [disepc] themselves, so the
   running value is unobservable. Must mirror [exec_one]/[exec_entry];
   test_machine's run/step equivalence tests pin the two paths
   together. *)
(* One dynamic instruction in step mode, through the superblock cursor
   when one is active. The event/raw stream, counters, and failure
   behaviour are identical to {!step_core}'s — the differential fuzzer
   runs this as its fourth lockstep backend to prove it. *)
let rec jit_step_core t j =
  if t.halted then false
  else if t.jit_ix < t.jit_end then begin
    let i = t.jit_ix in
    if
      Array.unsafe_get j.a_flags i land f_app <> 0
      && !(j.generation) <> j.cur_gen
    then begin
      (* Mid-block invalidation, observed at an application boundary:
         abandon the block (state is already consistent) and fall back
         to dispatch, which retires everything. *)
      t.jit_ix <- 0;
      t.jit_end <- 0;
      jit_step_core t j
    end
    else begin
      let next = exec_entry t j i in
      if next < 0 || next >= t.jit_end then begin
        t.jit_ix <- 0;
        t.jit_end <- 0
      end
      else t.jit_ix <- next;
      true
    end
  end
  else
    match t.cur with
    | Some e when t.disepc < Array.length e.seq ->
      step_in_sequence_core t e ~expansion_start:false;
      true
    | _ ->
      if t.disepc <> 0 then
        (* Interrupt resumption mid-sequence: the interpreter path
           re-expands and skips the first [disepc] instructions. *)
        step_core t
      else begin
        let b = jit_dispatch t j in
        if b < 0 then step_core t
        else begin
          let s = Array.unsafe_get j.blk_start b in
          t.jit_ix <- s;
          t.jit_end <- s + Array.unsafe_get j.blk_len b;
          jit_step_core t j
        end
      end

let step_any t =
  match t.jit with None -> step_core t | Some j -> jit_step_core t j

let event_of_raw t =
  let r = t.raw in
  {
    Event.pc = r.Raw.pc;
    insn = r.Raw.insn;
    origin =
      (if r.Raw.rsid < 0 then Event.App
       else Event.Rep { rsid = r.Raw.rsid; offset = r.Raw.offset; len = r.Raw.len });
    expansion_start = r.Raw.expansion_start;
    mem_addr = (if r.Raw.mem_addr = no_mem then None else Some r.Raw.mem_addr);
    branch =
      (if r.Raw.branch < 0 then None
       else
         Some
           {
             Event.taken = r.Raw.branch land 1 <> 0;
             target = r.Raw.target;
             dise_internal = r.Raw.branch land 2 <> 0;
           });
    fetched_new_pc = r.Raw.fetched_new_pc;
  }

let step t = if step_any t then Some (event_of_raw t) else None

let default_max_steps = 100_000_000

let run_events ?(max_steps = default_max_steps) t f =
  (* The halted check lets a program whose final instruction is exactly
     the [max_steps]-th complete normally; a still-running machine
     stops having executed exactly [max_steps] instructions, never
     [max_steps + 1]. *)
  let rec go () =
    if (not t.halted) && t.executed >= max_steps then
      fail "exceeded %d steps without halting" max_steps;
    if step_any t then begin
      f (event_of_raw t);
      go ()
    end
    else t.executed
  in
  go ()

let run_raw ?(max_steps = default_max_steps) ?poll t sink =
  match poll with
  | None ->
    let rec go () =
      if (not t.halted) && t.executed >= max_steps then
        fail "exceeded %d steps without halting" max_steps;
      if step_any t then begin
        sink t.raw;
        go ()
      end
      else t.executed
    in
    go ()
  | Some poll ->
    (* Amortized cooperative cancellation point: one poll every 2048
       events keeps the overhead below the noise floor while bounding
       how long a deadline overrun can go unnoticed. *)
    let k = ref 0 in
    let rec go () =
      if (not t.halted) && t.executed >= max_steps then
        fail "exceeded %d steps without halting" max_steps;
      if step_any t then begin
        sink t.raw;
        incr k;
        if !k land 2047 = 0 then poll ();
        go ()
      end
      else t.executed
    in
    go ()

(* Event-free full-speed run: whole superblocks execute in a local
   tail-recursive loop — no step dispatch, no cursor maintenance, no
   [t.raw] bookkeeping, the arena arrays and the per-block counters
   held in registers. This is the [machine.run] hot path the
   microbenchmarks measure. The executed/app-fetched counts live in
   the loop arguments and are flushed at every exit — including
   before any raise, so failure paths observe the same counter values
   as the interpreter. No per-entry generation check is needed here:
   nothing runs between [jit_dispatch]'s check and the block's end
   that could bump the generation (unlike step mode, where the caller
   regains control between instructions). *)
(* Operand accessors for the packed micro-op form: x (src1) at bit
   12, y (src2) at 24, z (dest) at 18. Tiny on purpose — the machine
   library raises -inline so these fold into the match arms below. *)
let rd_x regs uop = Regfile.unsafe_get_idx regs ((uop lsr 12) land 63)
let rd_y regs uop = Regfile.unsafe_get_idx regs ((uop lsr 24) land 63)
let rd_z regs uop = Regfile.unsafe_get_idx regs ((uop lsr 18) land 63)

let wr regs uop v =
  let z = (uop lsr 18) land 63 in
  if z <> 0 then Regfile.unsafe_set_idx regs z v

let run_block t j b ~max_steps =
  let a_uop = j.a_uop
  and a_imm = j.a_imm
  and a_fall = j.a_fall
  and a_pc = j.a_pc
  and c_app = j.c_app
  and c_est = j.c_est in
  let regs = t.regs
  and mem = t.mem in
  let start = Array.unsafe_get j.blk_start b in
  let stop = start + Array.unsafe_get j.blk_len b in
  (* Counters are reconstructed from the compile-time prefix sums
     rather than updated per instruction: with [bk]/[ba]/[be] the
     loop-carried sync bases, the not-yet-flushed counts on arrival
     at entry [i] are [i - bk] executed, [c_app.(i) - ba] fetches and
     [c_est.(i) - be] expansions. The bases only move at the rare
     discontinuities — DISE-internal transfers, and memory operations,
     which flush *before* calling [Memory] so a fault unwinds with
     exactly the interpreter's counter values (fetch counted,
     completion not). [flush_pre]/[flush_post] differ in whether the
     current entry counts as executed; both count its fetch, because
     the interpreter bumps [app_fetched]/[expansions] before executing
     and every flush site sits at or after that point.

     There is no per-entry [max_steps] check: [run_jit] only enters a
     block when the whole straight-line path fits in the remaining
     step budget, and [goto] — the only way to revisit an entry —
     bails back to the interpreter when it can no longer prove that
     (the interpreter then re-expands at the published mid-sequence
     boundary and checks every step). Likewise there is no per-entry
     [t.pc] maintenance: exits publish the boundary themselves, and
     the arms that can raise ([Memory] faults, unmatched codewords)
     first set [t.pc] to the application PC the interpreter would
     report.

     The ALU operations are spelled out one arm per opcode, a few
     inline instructions each, mirroring [Op.eval_rop] under the
     invariant that register values are signed-32 canonical; the
     run/step equivalence tests and the fuzzer's four-way lockstep
     oracle pin all of this against the interpreter. Everything here
     self-tail-calls [go]: a shared continuation helper would put a
     full call — prologue, stack check, poll, argument spills — on
     the per-instruction path. *)
  let flush_pre i bk ba be =
    t.executed <- t.executed + (i - bk);
    t.app_fetched <- t.app_fetched + (Array.unsafe_get c_app (i + 1) - ba);
    t.expansions <- t.expansions + (Array.unsafe_get c_est (i + 1) - be)
  in
  let flush_post i bk ba be =
    t.executed <- t.executed + (i - bk) + 1;
    t.app_fetched <- t.app_fetched + (Array.unsafe_get c_app (i + 1) - ba);
    t.expansions <- t.expansions + (Array.unsafe_get c_est (i + 1) - be)
  in
  let rec go i bk ba be =
    if i >= stop then begin
      (* fell off the block's end; [i - 1] completed an application
         instruction (blocks close on whole instructions), so its
         fall-through is the next boundary *)
      t.disepc <- 0;
      t.pc <- Array.unsafe_get a_fall (i - 1);
      t.executed <- t.executed + (i - bk);
      t.app_fetched <- t.app_fetched + (Array.unsafe_get c_app i - ba);
      t.expansions <- t.expansions + (Array.unsafe_get c_est i - be)
    end
    else begin
      let uop = Array.unsafe_get a_uop i in
      match uop land 63 with
      | 0 -> go (i + 1) bk ba be (* nop *)
      | 1 ->
        t.halted <- true;
        t.disepc <- 0;
        t.pc <- Array.unsafe_get a_pc i;
        flush_post i bk ba be
      | 2 ->
        t.pc <- Array.unsafe_get a_pc i;
        flush_pre i bk ba be;
        fail "codeword at 0x%x matched no production" (Array.unsafe_get a_pc i)
      | 3 ->
        t.pc <- Array.unsafe_get a_pc i;
        flush_pre i bk ba be;
        fail "codeword inside replacement sequence (recursion)"
      | 4 ->
        t.pc <- Array.unsafe_get a_pc i;
        flush_pre i bk ba be;
        fail "DISE branch outside replacement sequence"
      | 5 ->
        t.pc <- Array.unsafe_get a_pc i;
        flush_pre i bk ba be;
        fail "DISE jump outside replacement sequence"
      (* rop: register-register ALU; then ropi, lda, lui *)
      | 8 -> wr regs uop (Op.signed32 (rd_x regs uop + (rd_y regs uop))); go (i + 1) bk ba be
      | 9 -> wr regs uop (Op.signed32 (rd_x regs uop - (rd_y regs uop))); go (i + 1) bk ba be
      | 10 -> wr regs uop (Op.signed32 (rd_x regs uop * (rd_y regs uop))); go (i + 1) bk ba be
      | 11 -> wr regs uop (rd_x regs uop land (rd_y regs uop)); go (i + 1) bk ba be
      | 12 -> wr regs uop (rd_x regs uop lor (rd_y regs uop)); go (i + 1) bk ba be
      | 13 -> wr regs uop (rd_x regs uop lxor (rd_y regs uop)); go (i + 1) bk ba be
      | 14 -> wr regs uop (Op.signed32 (Op.mask32 (rd_x regs uop) lsl ((rd_y regs uop) land 31))); go (i + 1) bk ba be
      | 15 -> wr regs uop (Op.signed32 (Op.mask32 (rd_x regs uop) lsr ((rd_y regs uop) land 31))); go (i + 1) bk ba be
      | 16 -> wr regs uop (rd_x regs uop asr ((rd_y regs uop) land 31)); go (i + 1) bk ba be
      | 17 -> wr regs uop (if rd_x regs uop < (rd_y regs uop) then 1 else 0); go (i + 1) bk ba be
      | 18 -> wr regs uop (if Op.mask32 (rd_x regs uop) < Op.mask32 ((rd_y regs uop)) then 1 else 0); go (i + 1) bk ba be
      | 19 -> wr regs uop (if rd_x regs uop = (rd_y regs uop) then 1 else 0); go (i + 1) bk ba be
      | 20 -> wr regs uop (if rd_x regs uop < (rd_y regs uop) then 1 else 0); go (i + 1) bk ba be
      | 21 -> wr regs uop (if rd_x regs uop <= (rd_y regs uop) then 1 else 0); go (i + 1) bk ba be
      | 24 -> wr regs uop (Op.signed32 (rd_x regs uop + (Array.unsafe_get a_imm i))); go (i + 1) bk ba be
      | 25 -> wr regs uop (Op.signed32 (rd_x regs uop - (Array.unsafe_get a_imm i))); go (i + 1) bk ba be
      | 26 -> wr regs uop (Op.signed32 (rd_x regs uop * (Array.unsafe_get a_imm i))); go (i + 1) bk ba be
      | 27 -> wr regs uop (rd_x regs uop land (Array.unsafe_get a_imm i)); go (i + 1) bk ba be
      | 28 -> wr regs uop (rd_x regs uop lor (Array.unsafe_get a_imm i)); go (i + 1) bk ba be
      | 29 -> wr regs uop (rd_x regs uop lxor (Array.unsafe_get a_imm i)); go (i + 1) bk ba be
      | 30 -> wr regs uop (Op.signed32 (Op.mask32 (rd_x regs uop) lsl ((Array.unsafe_get a_imm i) land 31))); go (i + 1) bk ba be
      | 31 -> wr regs uop (Op.signed32 (Op.mask32 (rd_x regs uop) lsr ((Array.unsafe_get a_imm i) land 31))); go (i + 1) bk ba be
      | 32 -> wr regs uop (rd_x regs uop asr ((Array.unsafe_get a_imm i) land 31)); go (i + 1) bk ba be
      | 33 -> wr regs uop (if rd_x regs uop < (Array.unsafe_get a_imm i) then 1 else 0); go (i + 1) bk ba be
      | 34 -> wr regs uop (if Op.mask32 (rd_x regs uop) < Op.mask32 ((Array.unsafe_get a_imm i)) then 1 else 0); go (i + 1) bk ba be
      | 35 -> wr regs uop (if rd_x regs uop = (Array.unsafe_get a_imm i) then 1 else 0); go (i + 1) bk ba be
      | 36 -> wr regs uop (if rd_x regs uop < (Array.unsafe_get a_imm i) then 1 else 0); go (i + 1) bk ba be
      | 37 -> wr regs uop (if rd_x regs uop <= (Array.unsafe_get a_imm i) then 1 else 0); go (i + 1) bk ba be
      | 38 -> wr regs uop (Op.signed32 (rd_x regs uop + Array.unsafe_get a_imm i) (* lda *)); go (i + 1) bk ba be
      | 39 -> wr regs uop (Op.signed32 (Array.unsafe_get a_imm i lsl 16) (* lui *)); go (i + 1) bk ba be
      | 40 ->
        let a = rd_x regs uop in
        t.pc <- Array.unsafe_get a_pc i;
        flush_pre i bk ba be;
        wr regs uop (Memory.read_s32 mem (Op.mask32 (a + Array.unsafe_get a_imm i)));
        go (i + 1) i (Array.unsafe_get c_app (i + 1)) (Array.unsafe_get c_est (i + 1))
      | 41 ->
        let a = rd_x regs uop in
        t.pc <- Array.unsafe_get a_pc i;
        flush_pre i bk ba be;
        wr regs uop (Memory.read_u8 mem (Op.mask32 (a + Array.unsafe_get a_imm i)));
        go (i + 1) i (Array.unsafe_get c_app (i + 1)) (Array.unsafe_get c_est (i + 1))
      | 42 ->
        let a = rd_x regs uop in
        let v = Op.mask32 (rd_z regs uop) in
        t.pc <- Array.unsafe_get a_pc i;
        flush_pre i bk ba be;
        Memory.write_u32 mem (Op.mask32 (a + Array.unsafe_get a_imm i)) v;
        go (i + 1) i (Array.unsafe_get c_app (i + 1)) (Array.unsafe_get c_est (i + 1))
      | 43 ->
        let a = rd_x regs uop in
        let v = rd_z regs uop in
        t.pc <- Array.unsafe_get a_pc i;
        flush_pre i bk ba be;
        Memory.write_u8 mem (Op.mask32 (a + Array.unsafe_get a_imm i)) v;
        go (i + 1) i (Array.unsafe_get c_app (i + 1)) (Array.unsafe_get c_est (i + 1))
      (* conditional application branch; taken = side exit *)
      | 44 ->
        if rd_x regs uop = 0 then begin
          t.disepc <- 0;
          t.pc <- Array.unsafe_get a_imm i;
          flush_post i bk ba be
        end
        else go (i + 1) bk ba be
      | 45 ->
        if rd_x regs uop <> 0 then begin
          t.disepc <- 0;
          t.pc <- Array.unsafe_get a_imm i;
          flush_post i bk ba be
        end
        else go (i + 1) bk ba be
      | 46 ->
        if rd_x regs uop < 0 then begin
          t.disepc <- 0;
          t.pc <- Array.unsafe_get a_imm i;
          flush_post i bk ba be
        end
        else go (i + 1) bk ba be
      | 47 ->
        if rd_x regs uop >= 0 then begin
          t.disepc <- 0;
          t.pc <- Array.unsafe_get a_imm i;
          flush_post i bk ba be
        end
        else go (i + 1) bk ba be
      | 48 ->
        if rd_x regs uop <= 0 then begin
          t.disepc <- 0;
          t.pc <- Array.unsafe_get a_imm i;
          flush_post i bk ba be
        end
        else go (i + 1) bk ba be
      | 49 ->
        if rd_x regs uop > 0 then begin
          t.disepc <- 0;
          t.pc <- Array.unsafe_get a_imm i;
          flush_post i bk ba be
        end
        else go (i + 1) bk ba be
      | 50 ->
        t.disepc <- 0;
        t.pc <- Array.unsafe_get a_imm i;
        flush_post i bk ba be
      | 51 ->
        (* jal: return address is the application fall-through *)
        Regfile.unsafe_set_idx regs ra_index
          (Op.signed32 (Array.unsafe_get a_fall i));
        t.disepc <- 0;
        t.pc <- Array.unsafe_get a_imm i;
        flush_post i bk ba be
      | 52 ->
        t.disepc <- 0;
        t.pc <- Op.mask32 (rd_x regs uop);
        flush_post i bk ba be
      | 53 ->
        (* jalr: target read before the link write, like the interpreter *)
        let target = Op.mask32 (rd_x regs uop) in
        wr regs uop (Op.signed32 (Array.unsafe_get a_fall i));
        t.disepc <- 0;
        t.pc <- target;
        flush_post i bk ba be
      (* DISE-internal conditional branch, then djmp *)
      | 54 -> if rd_x regs uop = 0 then goto i (Array.unsafe_get a_imm i) bk ba be else go (i + 1) bk ba be
      | 55 -> if rd_x regs uop <> 0 then goto i (Array.unsafe_get a_imm i) bk ba be else go (i + 1) bk ba be
      | 56 -> if rd_x regs uop < 0 then goto i (Array.unsafe_get a_imm i) bk ba be else go (i + 1) bk ba be
      | 57 -> if rd_x regs uop >= 0 then goto i (Array.unsafe_get a_imm i) bk ba be else go (i + 1) bk ba be
      | 58 -> if rd_x regs uop <= 0 then goto i (Array.unsafe_get a_imm i) bk ba be else go (i + 1) bk ba be
      | 59 -> if rd_x regs uop > 0 then goto i (Array.unsafe_get a_imm i) bk ba be else go (i + 1) bk ba be
      | _ -> goto i (Array.unsafe_get a_imm i) bk ba be (* djmp *)
    end
  (* DISE-internal transfer within the flattened sequence; [d = len]
     falls out of the expansion. *)
  and goto i d bk ba be =
    let len = Array.unsafe_get j.a_len i in
    if d < 0 || d > len then begin
      t.pc <- Array.unsafe_get a_pc i;
      flush_pre i bk ba be;
      fail "DISE transfer to offset %d outside sequence of length %d" d len
    end;
    if d = len then begin
      let tgt = Array.unsafe_get j.a_base i + len in
      t.disepc <- 0;
      t.pc <- Array.unsafe_get a_fall i;
      go tgt (bk + (tgt - i - 1))
        (ba + (Array.unsafe_get c_app tgt - Array.unsafe_get c_app (i + 1)))
        (be + (Array.unsafe_get c_est tgt - Array.unsafe_get c_est (i + 1)))
    end
    else begin
      let tgt = Array.unsafe_get j.a_base i + d in
      t.disepc <- d;
      if
        tgt <= i
        && t.executed + (i - bk) + 1 + (stop - tgt) > max_steps
      then begin
        (* a backward transfer this close to the step ceiling could
           loop past it unchecked: publish the mid-sequence boundary
           and hand the rest to the interpreter, which re-expands and
           checks every step *)
        t.pc <- Array.unsafe_get a_pc i;
        flush_post i bk ba be
      end
      else
        go tgt (bk + (tgt - i - 1))
          (ba + (Array.unsafe_get c_app tgt - Array.unsafe_get c_app (i + 1)))
          (be + (Array.unsafe_get c_est tgt - Array.unsafe_get c_est (i + 1)))
    end
  in
  go start start (Array.unsafe_get c_app start) (Array.unsafe_get c_est start)

let run_jit t j ~max_steps =
  while not t.halted do
    if t.executed >= max_steps then
      fail "exceeded %d steps without halting" max_steps;
    match t.cur with
    | Some e when t.disepc < Array.length e.seq ->
      step_in_sequence_core t e ~expansion_start:false
    | _ ->
      if t.disepc <> 0 then ignore (step_core t)
      else begin
        let b = jit_dispatch t j in
        if b < 0 then ignore (step_core t)
        else if max_steps - t.executed <= Array.unsafe_get j.blk_len b then
          (* whole-block entry could overrun the step ceiling, which
             the block body does not check per entry: interpret until
             the ceiling check above fires *)
          ignore (step_core t)
        else run_block t j b ~max_steps
      end
  done;
  t.executed

let run ?(max_steps = default_max_steps) t =
  match t.jit with
  | Some j -> run_jit t j ~max_steps
  | None ->
    let rec go () =
      if (not t.halted) && t.executed >= max_steps then
        fail "exceeded %d steps without halting" max_steps;
      if step_core t then go () else t.executed
    in
    go ()
