module I = Dise_isa.Insn
module Op = Dise_isa.Opcode
module Reg = Dise_isa.Reg
module Image = Dise_isa.Program.Image

type expansion = {
  rsid : int;
  seq : I.t array;
}

type expander = pc:int -> I.t -> expansion option

exception Runtime_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Runtime_error s)) fmt

module Event = struct
  type origin =
    | App
    | Rep of { rsid : int; offset : int; len : int }

  type branch = {
    taken : bool;
    target : int;
    dise_internal : bool;
  }

  type t = {
    pc : int;
    insn : I.t;
    origin : origin;
    expansion_start : bool;
    mem_addr : int option;
    branch : branch option;
    fetched_new_pc : bool;
  }
end

type t = {
  image : Image.t;
  insns : I.t array;  (* predecoded text: [Image.raw_insns image] *)
  dense : bool;       (* [Image.is_dense image]: size 4 everywhere *)
  mem : Memory.t;
  regs : Regfile.t;
  expander : expander;
  mutable pc : int;
  mutable disepc : int;
  mutable cur : expansion option;
  mutable cur_size : int;  (* byte size of the current application insn *)
  mutable halted : bool;
  mutable executed : int;
  mutable app_fetched : int;
  mutable expansions : int;
  (* Scratch outputs of [exec_one], read once by the caller while it
     builds the step's event: returning them would allocate a tuple on
     every executed instruction. *)
  mutable sc_mem : int;  (* effective address, or [no_mem] *)
  mutable sc_branch : Event.branch option;
}

(* Sentinel for "no memory access"; addresses are 32-bit masked, so
   [min_int] can never collide. *)
let no_mem = min_int

let no_expander ~pc:_ _ = None

let default_sp = 0x07FFFF00

let create ?(expander = no_expander) ?(entry = "main") image =
  let pc =
    match Image.symbol image entry with
    | Some a -> a
    | None -> Image.base image
  in
  let regs = Regfile.create () in
  Regfile.set regs Reg.sp default_sp;
  {
    image;
    insns = Image.raw_insns image;
    dense = Image.is_dense image;
    mem = Memory.create ();
    regs;
    expander;
    pc;
    disepc = 0;
    cur = None;
    cur_size = 4;
    halted = false;
    executed = 0;
    app_fetched = 0;
    expansions = 0;
    sc_mem = no_mem;
    sc_branch = None;
  }

let image t = t.image
let memory t = t.mem
let regs t = t.regs
let pc t = t.pc
let disepc t = t.disepc
let halted t = t.halted
let executed t = t.executed
let app_fetched t = t.app_fetched
let expansions t = t.expansions
let set_dise_reg t n v = Regfile.set t.regs (Reg.d n) v
let set_reg t r v = Regfile.set t.regs r v
let exit_code t = Regfile.get t.regs (Reg.r 2)

(* Result of executing one instruction. *)
type flow =
  | Next
  | App_goto of int
  | Dise_goto of int
  | Stop

let target_addr = function
  | I.Abs a -> a
  | I.Lab l -> fail "unresolved label %s at runtime" l

(* Execute [insn]; [in_seq] tells whether we are inside a replacement
   sequence (DISE-internal control is only legal there). The return
   address for calls is the application-level fall-through, i.e. the
   address after the (possibly expanded) trigger. Memory address and
   branch outcome are reported through [t.sc_mem]/[t.sc_branch]. *)
let exec_one t insn ~in_seq =
  let get r = Regfile.get t.regs r in
  let set r v = Regfile.set t.regs r v in
  t.sc_mem <- no_mem;
  t.sc_branch <- None;
  match insn with
  | I.Rop (op, a, b, c) ->
    set c (Op.eval_rop op (get a) (get b));
    Next
  | I.Ropi (op, a, v, c) ->
    set c (Op.eval_rop op (get a) v);
    Next
  | I.Lda (base, off, rd) ->
    set rd (get base + off);
    Next
  | I.Lui (v, rd) ->
    set rd (v lsl 16);
    Next
  | I.Mem (mop, base, off, data) ->
    let addr = Op.mask32 (get base + off) in
    t.sc_mem <- addr;
    (match mop with
    | Op.Ldq -> set data (Memory.read_s32 t.mem addr)
    | Op.Ldbu -> set data (Memory.read_u8 t.mem addr)
    | Op.Stq -> Memory.write_u32 t.mem addr (Op.mask32 (get data))
    | Op.Stb -> Memory.write_u8 t.mem addr (get data));
    Next
  | I.Br (bop, r, tgt) ->
    let target = target_addr tgt in
    let taken = Op.eval_bop bop (get r) in
    t.sc_branch <- Some { Event.taken; target; dise_internal = false };
    if taken then App_goto target else Next
  | I.Jmp tgt ->
    let target = target_addr tgt in
    t.sc_branch <- Some { Event.taken = true; target; dise_internal = false };
    App_goto target
  | I.Jal tgt ->
    let target = target_addr tgt in
    set Reg.ra (t.pc + t.cur_size);
    t.sc_branch <- Some { Event.taken = true; target; dise_internal = false };
    App_goto target
  | I.Jr r ->
    let target = Op.mask32 (get r) in
    t.sc_branch <- Some { Event.taken = true; target; dise_internal = false };
    App_goto target
  | I.Jalr (r, rd) ->
    let target = Op.mask32 (get r) in
    set rd (t.pc + t.cur_size);
    t.sc_branch <- Some { Event.taken = true; target; dise_internal = false };
    App_goto target
  | I.Dbr (bop, r, off) ->
    if not in_seq then fail "DISE branch outside replacement sequence";
    let taken = Op.eval_bop bop (get r) in
    t.sc_branch <- Some { Event.taken; target = off; dise_internal = true };
    if taken then Dise_goto off else Next
  | I.Djmp off ->
    if not in_seq then fail "DISE jump outside replacement sequence";
    t.sc_branch <- Some { Event.taken = true; target = off; dise_internal = true };
    Dise_goto off
  | I.Codeword _ ->
    if in_seq then fail "codeword inside replacement sequence (recursion)"
    else fail "codeword at 0x%x matched no production" t.pc
  | I.Nop -> Next
  | I.Halt -> Stop

let advance_app t = t.pc <- t.pc + t.cur_size

let finish_sequence t =
  t.cur <- None;
  t.disepc <- 0;
  advance_app t

(* Execute the replacement instruction at the current DISEPC. *)
let step_in_sequence t (e : expansion) ~expansion_start =
  let len = Array.length e.seq in
  let offset = t.disepc in
  let insn = e.seq.(offset) in
  let flow = exec_one t insn ~in_seq:true in
  let ev =
    {
      Event.pc = t.pc;
      insn;
      origin = Event.Rep { rsid = e.rsid; offset; len };
      expansion_start;
      mem_addr = (if t.sc_mem = no_mem then None else Some t.sc_mem);
      branch = t.sc_branch;
      fetched_new_pc = expansion_start;
    }
  in
  (match flow with
  | Next ->
    t.disepc <- offset + 1;
    if t.disepc >= len then finish_sequence t
  | App_goto target ->
    t.cur <- None;
    t.disepc <- 0;
    t.pc <- target
  | Dise_goto d ->
    if d < 0 || d > len then
      fail "DISE transfer to offset %d outside sequence of length %d" d len;
    t.disepc <- d;
    if d = len then finish_sequence t
  | Stop -> t.halted <- true);
  t.executed <- t.executed + 1;
  ev

let interrupt t =
  let saved = (t.pc, t.disepc) in
  t.cur <- None;
  saved

let resume t ~pc ~disepc =
  t.pc <- pc;
  t.disepc <- disepc;
  t.cur <- None;
  t.halted <- false

let step t =
  if t.halted then None
  else
    match t.cur with
    | Some e when t.disepc < Array.length e.seq ->
      Some (step_in_sequence t e ~expansion_start:false)
    | Some _ | None -> (
      (* Application-level fetch: predecoded text, O(1) for dense
         images (no per-step hashtable probe). *)
      let idx = Image.find_index t.image t.pc in
      if idx < 0 then fail "PC 0x%x outside text" t.pc
      else begin
        let insn = Array.unsafe_get t.insns idx in
        t.cur_size <- (if t.dense then 4 else Image.size_of_index t.image idx);
        t.app_fetched <- t.app_fetched + 1;
        match t.expander ~pc:t.pc insn with
        | Some e ->
          if Array.length e.seq = 0 then
            fail "empty replacement sequence for 0x%x" t.pc;
          t.expansions <- t.expansions + 1;
          t.cur <- Some e;
          (* A restored DISEPC (interrupt resumption) skips the first
             instructions of the sequence; normally it is 0. *)
          if t.disepc >= Array.length e.seq then t.disepc <- 0;
          Some (step_in_sequence t e ~expansion_start:true)
        | None ->
          t.disepc <- 0;
          let flow = exec_one t insn ~in_seq:false in
          let ev =
            {
              Event.pc = t.pc;
              insn;
              origin = Event.App;
              expansion_start = false;
              mem_addr = (if t.sc_mem = no_mem then None else Some t.sc_mem);
              branch = t.sc_branch;
              fetched_new_pc = true;
            }
          in
          (match flow with
          | Next -> advance_app t
          | App_goto target -> t.pc <- target
          | Dise_goto _ -> assert false
          | Stop -> t.halted <- true);
          t.executed <- t.executed + 1;
          Some ev
      end)

let run_events ?(max_steps = 100_000_000) t f =
  (* The halted check lets a program whose final instruction is exactly
     the [max_steps]-th complete normally; a still-running machine
     stops having executed exactly [max_steps] instructions, never
     [max_steps + 1]. *)
  let rec go () =
    if (not t.halted) && t.executed >= max_steps then
      fail "exceeded %d steps without halting" max_steps;
    match step t with
    | Some ev ->
      f ev;
      go ()
    | None -> t.executed
  in
  go ()

let run ?max_steps t = run_events ?max_steps t (fun _ -> ())
