type sink = Chan of out_channel | Buf of Buffer.t

type t = {
  sink : sink;
  mutex : Mutex.t;
  mutable count : int;
}

let to_channel chan = { sink = Chan chan; mutex = Mutex.create (); count = 0 }
let to_buffer buf = { sink = Buf buf; mutex = Mutex.create (); count = 0 }

let emit t fields =
  let line =
    let buf = Buffer.create 128 in
    Json.to_buffer buf (Json.Obj fields);
    Buffer.add_char buf '\n';
    Buffer.contents buf
  in
  Mutex.lock t.mutex;
  (match t.sink with
  | Chan chan -> output_string chan line
  | Buf buf -> Buffer.add_string buf line);
  t.count <- t.count + 1;
  Mutex.unlock t.mutex

let lines t = t.count

let close t =
  Mutex.lock t.mutex;
  (match t.sink with Chan chan -> flush chan | Buf _ -> ());
  Mutex.unlock t.mutex
