(** Per-commit performance/conformance trajectory records.

    One record summarizes one tool run (the conformance suite, a
    bench sweep) at one commit: pass rate, wall-clock, key latency
    quantiles. Records accumulate in two tracked files — a JSONL
    trajectory (machine-read, one record per line, validated by
    doc/schema/trajectory.schema.json) and a markdown table
    (human-read) — so a regression shows up as a diff in review and
    the continuous monitor can compare a fresh run against the
    previous record for the same tool and suite. *)

type record = {
  tool : string;  (** ["conformance"], ["bench"], ... *)
  suite : string;  (** ["quick"], ["full"], a bench suite name, ... *)
  ts : int;  (** unix seconds, supplied by the caller *)
  commit : string;  (** see {!commit_id} *)
  cells : int;  (** units of work (vector x backend cells, bench runs) *)
  passed : int;
  wall_s : float;
  p50_ns : int;
  p95_ns : int;
  p99_ns : int;
  extra : (string * Json.t) list;
      (** tool-specific members merged into the JSON object; must not
          collide with the fixed field names *)
}

val pass_rate : record -> float
(** [passed / cells] (1.0 when [cells] is 0). *)

val commit_id : unit -> string
(** First of [$GITHUB_SHA], [$DISESIM_COMMIT], or ["local"] — no
    subprocess, so records can be stamped from any environment. *)

val to_json : record -> Json.t
(** Fixed members [record: "trajectory"], [tool], [suite], [ts],
    [commit], [cells], [passed], [pass_rate], [wall_s], [p50_ns],
    [p95_ns], [p99_ns], then [extra]. *)

val of_json : Json.t -> record option
(** Inverse of {!to_json}; [None] when a required member is missing
    or mistyped (unknown members land in [extra]). *)

val append : ?md:string -> jsonl:string -> record -> unit
(** Append one line to [jsonl] (created if missing) and, when [md] is
    given, one table row to that markdown file (created with a header
    if missing). *)

val last : jsonl:string -> tool:string -> suite:string -> record option
(** The most recent record in [jsonl] matching [tool] and [suite];
    unparseable lines are skipped. [None] when the file is missing or
    holds no match. *)

val check_regression :
  ?threshold:float -> prev:record -> record -> (unit, string) result
(** [Error msg] when the new record's [wall_s] exceeds
    [threshold *. prev.wall_s] (default threshold 1.2, i.e. a >20%
    wall-clock regression) or its pass rate dropped below [prev]'s. *)
