type t = {
  buf : Buffer.t;
  chan : out_channel option;  (* flushed-to destination, if any *)
  max_events : int;
  mutable count : int;
  mutable dropped : int;
  mutable truncated : bool;
  mutable first : bool;
  mutable closed : bool;
}

let create ?(max_events = 1_000_000) chan buf =
  Buffer.add_string buf "[\n";
  { buf; chan; max_events; count = 0; dropped = 0; truncated = false;
    first = true; closed = false }

let to_channel ?max_events chan =
  create ?max_events (Some chan) (Buffer.create 65536)

let to_buffer ?max_events buf = create ?max_events None buf

let maybe_flush t =
  match t.chan with
  | Some chan when Buffer.length t.buf >= 65536 ->
    output_string chan (Buffer.contents t.buf);
    Buffer.clear t.buf
  | _ -> ()

let event t fields =
  if t.first then t.first <- false else Buffer.add_string t.buf ",\n";
  Json.to_buffer t.buf (Json.Obj fields);
  maybe_flush t

(* Record-keeping fields shared by every event type. *)
let common ~name ~cat ~ph ~ts ~tid rest =
  ("name", Json.String name)
  :: ("cat", Json.String cat)
  :: ("ph", Json.String ph)
  :: ("ts", Json.Int ts)
  :: ("pid", Json.Int 1)
  :: ("tid", Json.Int tid)
  :: rest

let metadata_thread t ~tid ~name =
  if not t.closed then
    event t
      [
        ("name", Json.String "thread_name");
        ("ph", Json.String "M");
        ("pid", Json.Int 1);
        ("tid", Json.Int tid);
        ("args", Json.Obj [ ("name", Json.String name) ]);
      ]

let counted t =
  if t.closed || t.count >= t.max_events then begin
    if t.count >= t.max_events then begin
      (* Exact drop accounting: every event refused past the cap is
         counted, so the truncation marker (and the run's stats) can
         say how much of the timeline is missing, not just that some
         of it is. Post-close events are bugs, not drops. *)
      if not t.closed then t.dropped <- t.dropped + 1;
      t.truncated <- true
    end;
    false
  end
  else begin
    t.count <- t.count + 1;
    true
  end

let complete t ~name ~cat ~ts ~dur ~tid ~args =
  if counted t then
    event t
      (common ~name ~cat ~ph:"X" ~ts ~tid
         (("dur", Json.Int dur)
         :: (match args with [] -> [] | args -> [ ("args", Json.Obj args) ])))

let instant t ~name ~cat ~ts ~tid ~args =
  if counted t then
    event t
      (common ~name ~cat ~ph:"i" ~ts ~tid
         (("s", Json.String "t")
         :: (match args with [] -> [] | args -> [ ("args", Json.Obj args) ])))

let emitted t = t.count
let dropped t = t.dropped
let truncated t = t.truncated

let close t =
  if not t.closed then begin
    if t.truncated then
      event t
        (common
           ~name:
             (Printf.sprintf "trace truncated (event cap reached, %d dropped)"
                t.dropped)
           ~cat:"meta" ~ph:"i" ~ts:0 ~tid:0
           [
             ("s", Json.String "g");
             ("args", Json.Obj [ ("dropped", Json.Int t.dropped) ]);
           ]);
    t.closed <- true;
    Buffer.add_string t.buf "\n]\n";
    match t.chan with
    | Some chan ->
      output_string chan (Buffer.contents t.buf);
      Buffer.clear t.buf;
      flush chan
    | None -> ()
  end
