(** Process-wide metrics registry: counters, gauges, and log-bucketed
    latency histograms.

    Every number the system reports — resilience counters, JIT
    compile/hit counts, serve latencies — lives in this one registry so
    snapshots, deltas, and JSON serialization have a single source of
    truth. All mutation is domain-safe: counters, gauges, and histogram
    cells are [Atomic.t]; metric {e creation} is serialized by a mutex.

    Instruments are registered by name; [make] is idempotent (the same
    name returns the same instrument), so modules can declare their
    instruments at top level without coordinating initialization order.
    Registering the same name as two different kinds raises
    [Invalid_argument].

    {b Cost when disabled.} The registry is enabled by default; setting
    the environment variable [DISESIM_METRICS] to [0], [off], [false],
    or [no] — or calling {!set_enabled}[ false] — turns every recording
    operation into a single atomic load and branch, and histogram
    observation into a no-op. Nothing is allocated on the recording
    path either way.

    {b Snapshot semantics.} All instruments are monotone except gauges,
    so a later snapshot minus an earlier one ({!delta}) is a valid
    snapshot of the interval between them — this is how [serve_summary]
    reports per-session numbers from process-lifetime instruments.

    This module has no dependencies (not even [Unix]); callers supply
    timestamps and convert to nanoseconds (or use
    {!Histogram.observe_s}). *)

val set_enabled : bool -> unit
(** Enable or disable all recording. Reading (snapshots, [get]) always
    works. *)

val is_enabled : unit -> bool

module Counter : sig
  type t

  val make : string -> t
  (** Register (or fetch) the counter [name]. *)

  val incr : t -> unit
  val add : t -> int -> unit
  val get : t -> int
  val name : t -> string

  val set_for_test : t -> int -> unit
  (** Test-only: force a value (used by [reset] in tests). *)
end

module Gauge : sig
  type t

  val make : string -> t
  val set : t -> int -> unit
  val get : t -> int
  val name : t -> string
end

module Histogram : sig
  (** Log-linear bucketing: values 0–7 get exact unit buckets; each
      subsequent power-of-two range is split into 8 equal sub-buckets,
      so the relative bucket width — and therefore the worst-case
      quantile-estimation error — is bounded by 1/8 (12.5%). Values are
      non-negative integers; latencies are recorded in nanoseconds by
      convention (suffix instrument names with [_ns]). *)

  type t

  (** Immutable view of a histogram: total observation [count], exact
      integer [sum] of all observed values, and the non-empty buckets
      as [(lo, hi, count)] with [lo] inclusive, [hi] exclusive,
      ascending in [lo]. *)
  type snapshot = {
    count : int;
    sum : int;
    buckets : (int * int * int) array;
  }

  val make : string -> t
  val name : t -> string

  val observe : t -> int -> unit
  (** Record one non-negative integer observation (negative values
      clamp to 0). No-op while the registry is disabled. *)

  val observe_s : t -> float -> unit
  (** Record a duration given in seconds, converted to nanoseconds. *)

  val count : t -> int
  val sum : t -> int

  val snapshot : t -> snapshot

  val delta : since:snapshot -> snapshot -> snapshot
  (** [delta ~since later] is the interval histogram: observations
      recorded after [since] was taken. [later] must come from the same
      histogram, later in time. *)

  val quantile : snapshot -> float -> int
  (** [quantile s q] estimates the [q]-quantile ([0 < q <= 1]) as the
      inclusive upper bound of the bucket holding the exact order
      statistic of rank [ceil (q * count)] — i.e. the estimate lies in
      the same bucket as the exact quantile, so it overshoots by less
      than one bucket width. Returns 0 for an empty snapshot. *)

  val invariant : snapshot -> (unit, string) result
  (** Exact-sum invariant: bucket counts add up to [count], and [sum]
      lies within the bounds implied by the bucket ranges. (May report
      a transient violation if the snapshot raced concurrent
      observers; single-threaded snapshots always satisfy it.) *)

  val bucket_index : int -> int
  (** Bucket index a value falls into (exposed for tests). *)

  val bucket_bounds : int -> int * int
  (** [(lo, hi)] of a bucket index, [lo] inclusive, [hi] exclusive. *)

  val to_json : snapshot -> Json.t
  (** [{"count", "sum", "p50", "p95", "p99", "buckets":[{"lo","hi","count"},…]}] *)

  val of_json : Json.t -> snapshot
  (** Inverse of {!to_json} over the owned members ([count], [sum],
      [buckets]; the serialized quantiles are derived and recomputed).
      Total: malformed input decodes to an empty snapshot. *)

  val merge : snapshot -> snapshot -> snapshot
  (** Bucket-wise sum — a valid snapshot of the union of both
      observation streams (all histograms share one global bucket
      layout). Quantiles of the merged snapshot aggregate the
      underlying populations exactly as if one histogram had observed
      them all. *)
end

(** Whole-registry snapshot, in instrument registration order. *)
type snapshot = {
  counters : (string * int) list;
  gauges : (string * int) list;
  histograms : (string * Histogram.snapshot) list;
}

val snapshot : unit -> snapshot

val delta : since:snapshot -> snapshot -> snapshot
(** Pairwise {!Histogram.delta} / counter subtraction by name.
    Instruments registered after [since] was taken appear with their
    full value; gauges always carry their latest value. *)

val to_json : snapshot -> Json.t
(** Serialize against [doc/schema/metrics.schema.json]:
    [{"counters":{…}, "gauges":{…}, "histograms":{…}}]. *)

val of_json : Json.t -> snapshot
(** Inverse of {!to_json} (tolerant: unrecognized or malformed
    members decode to empty sections) — how the serve coordinator
    rebuilds each worker process's summary delta from the wire. *)

val merge : snapshot -> snapshot -> snapshot
(** Name-wise union: counters and histogram buckets are summed (both
    are monotone streams, so the merge is exact), gauges are summed
    too (the registry's gauges are pool-style occupancy numbers).
    Folding per-worker deltas with [merge] yields the tier-wide
    snapshot the merged [serve_summary] reports. *)

val find_counter : string -> Counter.t option
val find_histogram : string -> Histogram.t option

val reset_all : unit -> unit
(** Test-only: zero every instrument in the registry. *)
