(** Validator for the subset of JSON Schema the telemetry files use.

    Supported keywords: ["type"] (one name or a list of names among
    object / array / string / integer / number / boolean / null),
    ["properties"], ["required"], ["additionalProperties"] (boolean
    form), ["items"] (single-schema form), ["enum"], ["minimum"], and
    ["const"]. Unknown keywords are ignored, as the standard
    prescribes, so the checked-in schema files remain valid full JSON
    Schema documents readable by external tools. *)

type error = {
  path : string;  (** JSON-pointer-ish location, e.g. ["/stats/cycles"] *)
  message : string;
}

val validate : schema:Json.t -> Json.t -> error list
(** Empty list means the document conforms. *)

val pp_error : Format.formatter -> error -> unit
