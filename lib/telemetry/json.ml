type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

exception Parse_error of string

(* --- printing --------------------------------------------------------- *)

let escape_to_buffer buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let add_float buf f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Buffer.add_string buf (Printf.sprintf "%.1f" f)
  else if Float.is_finite f then
    Buffer.add_string buf (Printf.sprintf "%.17g" f)
  else Buffer.add_string buf "null"

let rec write buf ~indent ~level v =
  let pad n = if indent then Buffer.add_string buf (String.make (2 * n) ' ') in
  let sep () = if indent then Buffer.add_char buf '\n' in
  match v with
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> add_float buf f
  | String s -> escape_to_buffer buf s
  | List [] -> Buffer.add_string buf "[]"
  | List xs ->
    Buffer.add_char buf '[';
    sep ();
    List.iteri
      (fun i x ->
        if i > 0 then begin
          Buffer.add_char buf ',';
          sep ()
        end;
        pad (level + 1);
        write buf ~indent ~level:(level + 1) x)
      xs;
    sep ();
    pad level;
    Buffer.add_char buf ']'
  | Obj [] -> Buffer.add_string buf "{}"
  | Obj kvs ->
    Buffer.add_char buf '{';
    sep ();
    List.iteri
      (fun i (k, x) ->
        if i > 0 then begin
          Buffer.add_char buf ',';
          sep ()
        end;
        pad (level + 1);
        escape_to_buffer buf k;
        Buffer.add_string buf (if indent then ": " else ":");
        write buf ~indent ~level:(level + 1) x)
      kvs;
    sep ();
    pad level;
    Buffer.add_char buf '}'

let to_buffer buf v = write buf ~indent:false ~level:0 v

let to_string ?(indent = false) v =
  let buf = Buffer.create 256 in
  write buf ~indent ~level:0 v;
  Buffer.contents buf

let member k = function
  | Obj kvs -> List.assoc_opt k kvs
  | _ -> None

(* --- parsing ---------------------------------------------------------- *)

type state = { src : string; mutable pos : int }

let fail st fmt =
  Printf.ksprintf (fun m -> raise (Parse_error (Printf.sprintf "at %d: %s" st.pos m))) fmt

let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let skip_ws st =
  while
    st.pos < String.length st.src
    && (match st.src.[st.pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
  do
    st.pos <- st.pos + 1
  done

let expect st c =
  match peek st with
  | Some c' when c' = c -> st.pos <- st.pos + 1
  | Some c' -> fail st "expected %c, got %c" c c'
  | None -> fail st "expected %c, got end of input" c

let literal st word v =
  let n = String.length word in
  if st.pos + n <= String.length st.src && String.sub st.src st.pos n = word
  then begin
    st.pos <- st.pos + n;
    v
  end
  else fail st "invalid literal"

let parse_string st =
  expect st '"';
  let buf = Buffer.create 16 in
  let rec go () =
    if st.pos >= String.length st.src then fail st "unterminated string";
    let c = st.src.[st.pos] in
    st.pos <- st.pos + 1;
    match c with
    | '"' -> Buffer.contents buf
    | '\\' ->
      (if st.pos >= String.length st.src then fail st "unterminated escape";
       let e = st.src.[st.pos] in
       st.pos <- st.pos + 1;
       match e with
       | '"' -> Buffer.add_char buf '"'
       | '\\' -> Buffer.add_char buf '\\'
       | '/' -> Buffer.add_char buf '/'
       | 'b' -> Buffer.add_char buf '\b'
       | 'f' -> Buffer.add_char buf '\012'
       | 'n' -> Buffer.add_char buf '\n'
       | 'r' -> Buffer.add_char buf '\r'
       | 't' -> Buffer.add_char buf '\t'
       | 'u' ->
         if st.pos + 4 > String.length st.src then fail st "bad \\u escape";
         let hex = String.sub st.src st.pos 4 in
         st.pos <- st.pos + 4;
         let code =
           try int_of_string ("0x" ^ hex)
           with _ -> fail st "bad \\u escape %s" hex
         in
         (* UTF-8 encode the BMP code point; surrogate pairs are kept
            as two separately-encoded halves (good enough for the
            ASCII-dominated telemetry output). *)
         if code < 0x80 then Buffer.add_char buf (Char.chr code)
         else if code < 0x800 then begin
           Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
           Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
         end
         else begin
           Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
           Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
           Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
         end
       | c -> fail st "bad escape \\%c" c);
      go ()
    | c -> Buffer.add_char buf c; go ()
  in
  go ()

let parse_number st =
  let start = st.pos in
  let is_num_char c =
    match c with
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while
    st.pos < String.length st.src && is_num_char st.src.[st.pos]
  do
    st.pos <- st.pos + 1
  done;
  let s = String.sub st.src start (st.pos - start) in
  let is_int =
    not (String.exists (fun c -> c = '.' || c = 'e' || c = 'E') s)
  in
  if is_int then
    match int_of_string_opt s with
    | Some i -> Int i
    | None -> (
      match float_of_string_opt s with
      | Some f -> Float f
      | None -> fail st "bad number %S" s)
  else
    match float_of_string_opt s with
    | Some f -> Float f
    | None -> fail st "bad number %S" s

let rec parse_value st =
  skip_ws st;
  match peek st with
  | None -> fail st "unexpected end of input"
  | Some '{' ->
    expect st '{';
    skip_ws st;
    if peek st = Some '}' then begin
      expect st '}';
      Obj []
    end
    else begin
      let rec members acc =
        skip_ws st;
        let k = parse_string st in
        skip_ws st;
        expect st ':';
        let v = parse_value st in
        skip_ws st;
        match peek st with
        | Some ',' ->
          expect st ',';
          members ((k, v) :: acc)
        | Some '}' ->
          expect st '}';
          List.rev ((k, v) :: acc)
        | _ -> fail st "expected , or } in object"
      in
      Obj (members [])
    end
  | Some '[' ->
    expect st '[';
    skip_ws st;
    if peek st = Some ']' then begin
      expect st ']';
      List []
    end
    else begin
      let rec elems acc =
        let v = parse_value st in
        skip_ws st;
        match peek st with
        | Some ',' ->
          expect st ',';
          elems (v :: acc)
        | Some ']' ->
          expect st ']';
          List.rev (v :: acc)
        | _ -> fail st "expected , or ] in array"
      in
      List (elems [])
    end
  | Some '"' -> String (parse_string st)
  | Some 't' -> literal st "true" (Bool true)
  | Some 'f' -> literal st "false" (Bool false)
  | Some 'n' -> literal st "null" Null
  | Some ('-' | '0' .. '9') -> parse_number st
  | Some c -> fail st "unexpected character %c" c

let parse s =
  let st = { src = s; pos = 0 } in
  let v = parse_value st in
  skip_ws st;
  if st.pos <> String.length s then fail st "trailing garbage";
  v
