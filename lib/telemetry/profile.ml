type entry = {
  mutable expansions : int;
  mutable rep_instrs : int;
  mutable rt_hits : int;
  mutable rt_misses : int;
}

type t = {
  by_rsid : (int, entry) Hashtbl.t;
  by_pc : (int, int ref) Hashtbl.t;
  by_fetch : (int, int ref) Hashtbl.t;
}

let create () =
  {
    by_rsid = Hashtbl.create 64;
    by_pc = Hashtbl.create 256;
    by_fetch = Hashtbl.create 1024;
  }

let entry_for t rsid =
  match Hashtbl.find_opt t.by_rsid rsid with
  | Some e -> e
  | None ->
    let e = { expansions = 0; rep_instrs = 0; rt_hits = 0; rt_misses = 0 } in
    Hashtbl.add t.by_rsid rsid e;
    e

let on_expansion t ~rsid ~pc =
  let e = entry_for t rsid in
  e.expansions <- e.expansions + 1;
  match Hashtbl.find_opt t.by_pc pc with
  | Some r -> incr r
  | None -> Hashtbl.add t.by_pc pc (ref 1)

let on_fetch t ~pc =
  match Hashtbl.find_opt t.by_fetch pc with
  | Some r -> incr r
  | None -> Hashtbl.add t.by_fetch pc (ref 1)

let on_rep_instr t ~rsid =
  let e = entry_for t rsid in
  e.rep_instrs <- e.rep_instrs + 1

let on_rt t ~rsid ~miss =
  let e = entry_for t rsid in
  if miss then e.rt_misses <- e.rt_misses + 1 else e.rt_hits <- e.rt_hits + 1

let total_expansions t =
  Hashtbl.fold (fun _ e acc -> acc + e.expansions) t.by_rsid 0

let productions t =
  let items = Hashtbl.fold (fun rsid e acc -> (rsid, e) :: acc) t.by_rsid [] in
  List.sort
    (fun (ra, a) (rb, b) ->
      match compare b.expansions a.expansions with
      | 0 -> compare ra rb
      | c -> c)
    items

let top_pcs ?(n = 10) t =
  let items = Hashtbl.fold (fun pc r acc -> (pc, !r) :: acc) t.by_pc [] in
  let sorted =
    List.sort
      (fun (pa, a) (pb, b) ->
        match compare b a with 0 -> compare pa pb | c -> c)
      items
  in
  List.filteri (fun i _ -> i < n) sorted

let total_fetches t =
  Hashtbl.fold (fun _ r acc -> acc + !r) t.by_fetch 0

let fetch_counts t =
  Hashtbl.fold (fun pc r acc -> (pc, !r) :: acc) t.by_fetch []
  |> List.sort (fun (pa, _) (pb, _) -> compare pa pb)

let fetch_count t ~pc =
  match Hashtbl.find_opt t.by_fetch pc with Some r -> !r | None -> 0

let to_json ?(top = 10) t =
  Json.Obj
    [
      ( "productions",
        Json.List
          (List.map
             (fun (rsid, e) ->
               Json.Obj
                 [
                   ("rsid", Json.Int rsid);
                   ("expansions", Json.Int e.expansions);
                   ("rep_instrs", Json.Int e.rep_instrs);
                   ("rt_hits", Json.Int e.rt_hits);
                   ("rt_misses", Json.Int e.rt_misses);
                 ])
             (productions t)) );
      ( "hot_pcs",
        Json.List
          (List.map
             (fun (pc, count) ->
               Json.Obj [ ("pc", Json.Int pc); ("expansions", Json.Int count) ])
             (top_pcs ~n:top t)) );
    ]

let pp ppf t =
  Format.fprintf ppf "per-production profile:@.";
  Format.fprintf ppf "  %6s %12s %12s %10s %10s@." "rsid" "expansions"
    "rep-instrs" "rt-hits" "rt-misses";
  List.iter
    (fun (rsid, e) ->
      Format.fprintf ppf "  R%-5d %12d %12d %10d %10d@." rsid e.expansions
        e.rep_instrs e.rt_hits e.rt_misses)
    (productions t);
  match top_pcs t with
  | [] -> ()
  | pcs ->
    Format.fprintf ppf "hot expansion sites:@.";
    List.iter
      (fun (pc, count) ->
        Format.fprintf ppf "  0x%08x %12d@." pc count)
      pcs
