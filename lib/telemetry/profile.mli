(** Per-production and per-PC expansion profiles.

    A profile attaches to one run: the timing model records every
    expansion (keyed by replacement-sequence id and by trigger PC) and
    every injected replacement instruction; the controller records RT
    hits and misses per production. Collection costs a hashtable
    update per expansion event, so profiles are opt-in — a run without
    one pays nothing. *)

type entry = {
  mutable expansions : int;   (** dynamic expansions of this sequence *)
  mutable rep_instrs : int;   (** replacement instructions injected *)
  mutable rt_hits : int;
  mutable rt_misses : int;
}

type t

val create : unit -> t

val on_expansion : t -> rsid:int -> pc:int -> unit
(** Record an expansion of sequence [rsid] triggered at [pc]. *)

val on_fetch : t -> pc:int -> unit
(** Record one application fetch at [pc]. The timing model calls this
    for every [fetched_new_pc] instruction, so a profiled run yields a
    complete dynamic execution histogram of the static code — the raw
    material [disesim synthesize] mines candidate productions from. *)

val on_rep_instr : t -> rsid:int -> unit
(** Record one injected replacement instruction. *)

val on_rt : t -> rsid:int -> miss:bool -> unit
(** Record an RT lookup outcome for [rsid]. *)

val total_expansions : t -> int
(** Sum of per-production expansion counts. *)

val productions : t -> (int * entry) list
(** [(rsid, entry)] pairs sorted by descending expansion count. *)

val top_pcs : ?n:int -> t -> (int * int) list
(** The [n] (default 10) hottest trigger PCs as [(pc, expansions)],
    descending; ties broken by ascending PC so output is
    deterministic. *)

val total_fetches : t -> int
(** Sum of per-PC application-fetch counts. *)

val fetch_counts : t -> (int * int) list
(** Every fetched PC as [(pc, count)], ascending by PC — the
    deterministic input of the production miner. Empty when the run
    predates the fetch hook or had no application instructions. *)

val fetch_count : t -> pc:int -> int
(** Fetch count of one PC (0 when never fetched). *)

val to_json : ?top:int -> t -> Json.t
(** [{ "productions": [...], "hot_pcs": [...] }], productions sorted
    by descending expansions, hot PCs capped at [top] (default 10). *)

val pp : Format.formatter -> t -> unit
(** Per-production table followed by the hot-PC table. *)
