let enabled =
  Atomic.make
    (match Sys.getenv_opt "DISESIM_METRICS" with
    | Some ("0" | "off" | "false" | "no") -> false
    | _ -> true)

let set_enabled b = Atomic.set enabled b
let is_enabled () = Atomic.get enabled

(* Log-linear bucket layout, shared by histogram and snapshot code.
   Values 0..7 get unit buckets; [2^k, 2^(k+1)) is split into 8
   sub-buckets of width 2^(k-3), so consecutive bucket bounds differ
   by at most a factor of 9/8. OCaml ints are 63-bit, so the top
   octave is k = 61 and 480 buckets cover every non-negative int. *)
let sub_per_octave = 8
let n_buckets = 480

let msb v =
  let rec go v acc = if v <= 1 then acc else go (v lsr 1) (acc + 1) in
  go v 0

let bucket_index v =
  let v = if v < 0 then 0 else v in
  if v < sub_per_octave then v
  else
    let k = msb v in
    (* (v lsr (k-3)) is in [8, 16); its low 3 bits select the
       sub-bucket within octave k. *)
    sub_per_octave + ((k - 3) * sub_per_octave) + ((v lsr (k - 3)) land 7)

let bucket_bounds i =
  if i < sub_per_octave then (i, i + 1)
  else
    let k = 3 + ((i - sub_per_octave) / sub_per_octave) in
    let s = (i - sub_per_octave) mod sub_per_octave in
    let w = 1 lsl (k - 3) in
    let lo = (1 lsl k) + (s * w) in
    (lo, lo + w)

module Counter0 = struct
  type t = { name : string; cell : int Atomic.t }

  let unregistered name = { name; cell = Atomic.make 0 }
  let incr t = if Atomic.get enabled then ignore (Atomic.fetch_and_add t.cell 1)
  let add t n = if Atomic.get enabled then ignore (Atomic.fetch_and_add t.cell n)
  let get t = Atomic.get t.cell
  let name t = t.name
  let set_for_test t v = Atomic.set t.cell v
end

module Gauge0 = struct
  type t = { name : string; cell : int Atomic.t }

  let unregistered name = { name; cell = Atomic.make 0 }
  let set t v = if Atomic.get enabled then Atomic.set t.cell v
  let get t = Atomic.get t.cell
  let name t = t.name
end

module Histogram0 = struct
  type t = {
    name : string;
    cells : int Atomic.t array;
    count : int Atomic.t;
    sum : int Atomic.t;
  }

  type snapshot = {
    count : int;
    sum : int;
    buckets : (int * int * int) array;
  }

  let unregistered name =
    {
      name;
      cells = Array.init n_buckets (fun _ -> Atomic.make 0);
      count = Atomic.make 0;
      sum = Atomic.make 0;
    }

  let name t = t.name

  let observe t v =
    if Atomic.get enabled then begin
      let v = if v < 0 then 0 else v in
      ignore (Atomic.fetch_and_add t.cells.(bucket_index v) 1);
      ignore (Atomic.fetch_and_add t.count 1);
      ignore (Atomic.fetch_and_add t.sum v)
    end

  let observe_s t secs = observe t (int_of_float ((secs *. 1e9) +. 0.5))
  let count (t : t) = Atomic.get t.count
  let sum (t : t) = Atomic.get t.sum

  let snapshot (t : t) : snapshot =
    let buckets = ref [] in
    for i = n_buckets - 1 downto 0 do
      let c = Atomic.get t.cells.(i) in
      if c > 0 then
        let lo, hi = bucket_bounds i in
        buckets := (lo, hi, c) :: !buckets
    done;
    { count = Atomic.get t.count; sum = Atomic.get t.sum;
      buckets = Array.of_list !buckets }

  let delta ~(since : snapshot) (later : snapshot) : snapshot =
    let old = Hashtbl.create 16 in
    Array.iter (fun (lo, _, c) -> Hashtbl.replace old lo c) since.buckets;
    let buckets =
      Array.to_list later.buckets
      |> List.filter_map (fun (lo, hi, c) ->
             let c = c - (try Hashtbl.find old lo with Not_found -> 0) in
             if c > 0 then Some (lo, hi, c) else None)
      |> Array.of_list
    in
    { count = later.count - since.count; sum = later.sum - since.sum; buckets }

  let quantile (s : snapshot) q =
    if s.count <= 0 then 0
    else begin
      let rank =
        let r = int_of_float (ceil (q *. float_of_int s.count)) in
        if r < 1 then 1 else if r > s.count then s.count else r
      in
      let est = ref 0 and cum = ref 0 and found = ref false in
      Array.iter
        (fun (_, hi, c) ->
          if not !found then begin
            cum := !cum + c;
            if !cum >= rank then begin
              est := hi - 1;
              found := true
            end
          end)
        s.buckets;
      !est
    end

  let invariant (s : snapshot) =
    let total = Array.fold_left (fun a (_, _, c) -> a + c) 0 s.buckets in
    if total <> s.count then
      Error
        (Printf.sprintf "bucket counts sum to %d but count is %d" total s.count)
    else
      let lo_sum = Array.fold_left (fun a (lo, _, c) -> a + (lo * c)) 0 s.buckets
      and hi_sum =
        Array.fold_left (fun a (_, hi, c) -> a + ((hi - 1) * c)) 0 s.buckets
      in
      if s.sum < lo_sum || s.sum > hi_sum then
        Error
          (Printf.sprintf "sum %d outside bucket-implied bounds [%d, %d]"
             s.sum lo_sum hi_sum)
      else Ok ()

  let to_json (s : snapshot) =
    Json.Obj
      [
        ("count", Json.Int s.count);
        ("sum", Json.Int s.sum);
        ("p50", Json.Int (quantile s 0.50));
        ("p95", Json.Int (quantile s 0.95));
        ("p99", Json.Int (quantile s 0.99));
        ( "buckets",
          Json.List
            (Array.to_list s.buckets
            |> List.map (fun (lo, hi, c) ->
                   Json.Obj
                     [
                       ("lo", Json.Int lo);
                       ("hi", Json.Int hi);
                       ("count", Json.Int c);
                     ])) );
      ]

  (* Inverse of [to_json] over the members a snapshot owns (the
     serialized quantiles are derived data and are recomputed, not
     read back). Tolerant of junk: a malformed document yields the
     empty snapshot rather than an exception — merging metrics from a
     crashed worker must never take the coordinator down. *)
  let of_json j =
    let geti name ~default j =
      match Json.member name j with Some (Json.Int i) -> i | _ -> default
    in
    let buckets =
      match Json.member "buckets" j with
      | Some (Json.List bs) ->
        List.filter_map
          (fun b ->
            match
              (Json.member "lo" b, Json.member "hi" b, Json.member "count" b)
            with
            | Some (Json.Int lo), Some (Json.Int hi), Some (Json.Int c)
              when c > 0 ->
              Some (lo, hi, c)
            | _ -> None)
          bs
      | _ -> []
    in
    let buckets =
      List.sort (fun (a, _, _) (b, _, _) -> compare a b) buckets
      |> Array.of_list
    in
    { count = geti "count" ~default:0 j; sum = geti "sum" ~default:0 j; buckets }

  (* Bucket-wise sum: both operands use the one global bucket layout,
     so merging is an association on [lo]. The result is a valid
     snapshot of the union of both observation streams — this is how
     the coordinator folds per-worker histograms into one quantile
     estimate without ever seeing the raw observations. *)
  let merge (a : snapshot) (b : snapshot) : snapshot =
    let tbl = Hashtbl.create 32 in
    let add (lo, hi, c) =
      match Hashtbl.find_opt tbl lo with
      | Some (h, c0) -> Hashtbl.replace tbl lo (h, c0 + c)
      | None -> Hashtbl.replace tbl lo (hi, c)
    in
    Array.iter add a.buckets;
    Array.iter add b.buckets;
    let buckets =
      Hashtbl.fold (fun lo (hi, c) acc -> (lo, hi, c) :: acc) tbl []
      |> List.sort (fun (x, _, _) (y, _, _) -> compare x y)
      |> Array.of_list
    in
    { count = a.count + b.count; sum = a.sum + b.sum; buckets }
end

(* Registry: creation is rare, so a mutex around an ordered list is
   plenty; the instruments themselves are lock-free. *)
type metric =
  | C of Counter0.t
  | G of Gauge0.t
  | H of Histogram0.t

let registry : (string * metric) list ref = ref []
let registry_mu = Mutex.create ()

let register name find build =
  Mutex.lock registry_mu;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock registry_mu)
    (fun () ->
      match List.assoc_opt name !registry with
      | Some m -> (
        match find m with
        | Some inst -> inst
        | None ->
          invalid_arg
            (Printf.sprintf
               "Metrics: %S already registered as a different kind" name))
      | None ->
        let inst, m = build () in
        registry := !registry @ [ (name, m) ];
        inst)

let counter_make name =
  register name
    (function C c -> Some c | _ -> None)
    (fun () ->
      let c = Counter0.unregistered name in
      (c, C c))

let gauge_make name =
  register name
    (function G g -> Some g | _ -> None)
    (fun () ->
      let g = Gauge0.unregistered name in
      (g, G g))

let histogram_make name =
  register name
    (function H h -> Some h | _ -> None)
    (fun () ->
      let h = Histogram0.unregistered name in
      (h, H h))

type snapshot = {
  counters : (string * int) list;
  gauges : (string * int) list;
  histograms : (string * Histogram0.snapshot) list;
}

let snapshot () =
  Mutex.lock registry_mu;
  let metrics = !registry in
  Mutex.unlock registry_mu;
  let counters =
    List.filter_map
      (function n, C c -> Some (n, Counter0.get c) | _ -> None)
      metrics
  and gauges =
    List.filter_map
      (function n, G g -> Some (n, Gauge0.get g) | _ -> None)
      metrics
  and histograms =
    List.filter_map
      (function n, H h -> Some (n, Histogram0.snapshot h) | _ -> None)
      metrics
  in
  { counters; gauges; histograms }

let delta ~(since : snapshot) (later : snapshot) =
  let sub tbl (n, v) =
    match List.assoc_opt n tbl with Some v0 -> (n, v - v0) | None -> (n, v)
  in
  {
    counters = List.map (sub since.counters) later.counters;
    gauges = later.gauges;
    histograms =
      List.map
        (fun (n, h) ->
          match List.assoc_opt n since.histograms with
          | Some h0 -> (n, Histogram0.delta ~since:h0 h)
          | None -> (n, h))
        later.histograms;
  }

let to_json (s : snapshot) =
  let ints kvs = Json.Obj (List.map (fun (n, v) -> (n, Json.Int v)) kvs) in
  Json.Obj
    [
      ("counters", ints s.counters);
      ("gauges", ints s.gauges);
      ( "histograms",
        Json.Obj
          (List.map (fun (n, h) -> (n, Histogram0.to_json h)) s.histograms) );
    ]

(* Inverse of [to_json] (same tolerance policy as
   [Histogram0.of_json]): the coordinator rebuilds each worker's
   summary snapshot from its wire form to merge them. *)
let of_json j =
  let ints name =
    match Json.member name j with
    | Some (Json.Obj kvs) ->
      List.filter_map
        (function n, Json.Int v -> Some (n, v) | _ -> None)
        kvs
    | _ -> []
  in
  let histograms =
    match Json.member "histograms" j with
    | Some (Json.Obj hs) -> List.map (fun (n, h) -> (n, Histogram0.of_json h)) hs
    | _ -> []
  in
  { counters = ints "counters"; gauges = ints "gauges"; histograms }

(* Name-wise union. Counters and histograms are monotone streams, so
   summing them is exact; for a gauge (a point-in-time reading) the
   sum is the only aggregate that makes sense for the pool-style
   gauges we keep, and [a]'s reading wins for names only it has. *)
let merge (a : snapshot) (b : snapshot) =
  let union add xs ys =
    let extra = List.filter (fun (n, _) -> not (List.mem_assoc n xs)) ys in
    List.map
      (fun (n, v) ->
        match List.assoc_opt n ys with
        | Some w -> (n, add v w)
        | None -> (n, v))
      xs
    @ extra
  in
  {
    counters = union ( + ) a.counters b.counters;
    gauges = union ( + ) a.gauges b.gauges;
    histograms = union Histogram0.merge a.histograms b.histograms;
  }

let find_counter name =
  Mutex.lock registry_mu;
  let r = List.assoc_opt name !registry in
  Mutex.unlock registry_mu;
  match r with Some (C c) -> Some c | _ -> None

let find_histogram name =
  Mutex.lock registry_mu;
  let r = List.assoc_opt name !registry in
  Mutex.unlock registry_mu;
  match r with Some (H h) -> Some h | _ -> None

let reset_all () =
  Mutex.lock registry_mu;
  let metrics = !registry in
  Mutex.unlock registry_mu;
  List.iter
    (fun (_, m) ->
      match m with
      | C c -> Atomic.set c.Counter0.cell 0
      | G g -> Atomic.set g.Gauge0.cell 0
      | H h ->
        Array.iter (fun cell -> Atomic.set cell 0) h.Histogram0.cells;
        Atomic.set h.Histogram0.count 0;
        Atomic.set h.Histogram0.sum 0)
    metrics

module Counter = struct
  include Counter0

  let make = counter_make
end

module Gauge = struct
  include Gauge0

  let make = gauge_make
end

module Histogram = struct
  include Histogram0

  let make = histogram_make
  let bucket_index = bucket_index
  let bucket_bounds = bucket_bounds
end
