(** CPI-stack cycle attribution.

    One counter per stall class; the timing model charges every
    simulated cycle to exactly one bucket, so the buckets always sum
    to the run's cycle count ({!check} enforces this). Attribution is
    {e dominant-cause}: the retire-to-retire gap of each instruction
    goes entirely to the one constraint that bound it, and every
    serializing stall goes to the event that raised it (see
    doc/observability.md for the exact rules and their caveats).

    - [base]: pipeline fill, issue/retire bandwidth, in-order retire
      behind an already-charged instruction, and data-dependence
      stalls — the cycles a perfect-memory, perfect-prediction,
      DISE-free machine of the same width would still spend;
    - [icache]: serializing I-fetch miss stalls (L2 and memory);
    - [dcache]: load-miss latency exposed on the critical path
      (L1-D misses to L2 and memory);
    - [branch]: application branch mispredict redirects;
    - [rob]: dispatch stalls from ROB occupancy;
    - [dise_decode]: the per-expansion decode-stall option;
    - [ptrt_miss]: PT and RT miss stalls charged by the controller;
    - [rep_redirect]: redirects from taken replacement-sequence
      branches, including taken DISE-internal branches. *)

type t = {
  mutable base : int;
  mutable icache : int;
  mutable dcache : int;
  mutable branch : int;
  mutable rob : int;
  mutable dise_decode : int;
  mutable ptrt_miss : int;
  mutable rep_redirect : int;
}

val create : unit -> t

val total : t -> int
(** Sum of all buckets. *)

val check : t -> cycles:int -> unit
(** Raise [Failure] (with the full breakdown) unless {!total} equals
    [cycles]. The timing model calls this at the end of every run:
    the invariant is structural, so a failure means an attribution
    path was missed. *)

val bucket_names : string list
(** Bucket labels in canonical order (the order used everywhere a
    stack is rendered or serialized). *)

val to_list : t -> (string * int) list
(** [(name, cycles)] pairs in canonical order. *)

val to_json : t -> Json.t
(** Object with one integer member per bucket, in canonical order. *)

val of_json : Json.t -> (t, string) result
(** Inverse of {!to_json} (the result cache re-reads persisted
    stacks). Every bucket must be present as an integer; extra
    members are ignored. *)

val pp : Format.formatter -> t -> unit
(** Aligned table: cycles and share per bucket, plus the total. *)
