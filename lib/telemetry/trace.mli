(** Streaming Chrome [trace_event] sink.

    Emits the JSON-array trace format that [chrome://tracing] and
    Perfetto load: one ["X"] (complete) event per span, ["i"]
    (instant) events for point occurrences, and ["M"] metadata events
    naming processes and threads. Events stream straight to the
    buffer/channel — the sink never holds the trace in memory — and a
    configurable event cap keeps long runs from producing unbounded
    files (the cap is recorded in the trace itself as a final instant
    event, so truncation is visible in the viewer).

    Timestamps are in simulated {e cycles}, written to the [ts]/[dur]
    microsecond fields — load the trace with that unit in mind.
    A run without a sink pays nothing: the timing model's trace hooks
    are behind an [option]. *)

type t

val to_channel : ?max_events:int -> out_channel -> t
(** Open a sink writing to [channel]. [max_events] (default
    1_000_000) caps emitted span/instant events; metadata events are
    not counted. {!close} must be called to terminate the JSON
    array (the formats are forgiving of truncation, but tests
    re-parse the output strictly). *)

val to_buffer : ?max_events:int -> Buffer.t -> t
(** Same, accumulating into a buffer (used by tests). *)

val metadata_thread : t -> tid:int -> name:string -> unit
(** Name a thread track. *)

val complete : t -> name:string -> cat:string -> ts:int -> dur:int ->
  tid:int -> args:(string * Json.t) list -> unit
(** One span on track [tid], from [ts] for [dur] cycles. *)

val instant : t -> name:string -> cat:string -> ts:int -> tid:int ->
  args:(string * Json.t) list -> unit

val emitted : t -> int
(** Span/instant events written so far (excludes metadata). *)

val dropped : t -> int
(** Exact count of span/instant events refused because the cap was
    already reached — [emitted + dropped] is the number the run tried
    to record. Also written into the truncation marker's [args] and
    surfaced by [disesim run --stats-json] as the ["trace"] member. *)

val truncated : t -> bool
(** True once the event cap dropped at least one event
    ([dropped > 0]). *)

val close : t -> unit
(** Terminate the JSON array and flush. Idempotent. Does not close
    the underlying channel (the caller opened it). *)
