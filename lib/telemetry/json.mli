(** Minimal JSON values: construction, printing, and parsing.

    The telemetry layer emits (and the tests re-read) stats files,
    Chrome traces, and JSONL manifests; this module keeps that
    round-trip inside the repo with no external dependency. The parser
    accepts standard JSON (RFC 8259); the printer emits it. Numbers
    without a fraction or exponent parse as [Int], everything else as
    [Float]. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

exception Parse_error of string
(** Raised by {!parse} with a position-annotated message. *)

val parse : string -> t
(** Parse one JSON document (trailing whitespace allowed, trailing
    garbage rejected). *)

val to_string : ?indent:bool -> t -> string
(** Serialize. [indent] pretty-prints with two-space indentation;
    the default is compact. Non-finite floats serialize as [null]
    (JSON has no representation for them). *)

val to_buffer : Buffer.t -> t -> unit
(** Compact serialization into an existing buffer (the streaming
    sinks use this to avoid intermediate strings). *)

val member : string -> t -> t option
(** [member k (Obj ...)] looks up key [k]; [None] on missing key or
    non-object. *)

val escape_to_buffer : Buffer.t -> string -> unit
(** Append the JSON string literal (quotes included) for [s]. *)
