type record = {
  tool : string;
  suite : string;
  ts : int;
  commit : string;
  cells : int;
  passed : int;
  wall_s : float;
  p50_ns : int;
  p95_ns : int;
  p99_ns : int;
  extra : (string * Json.t) list;
}

let pass_rate r =
  if r.cells <= 0 then 1.0 else float_of_int r.passed /. float_of_int r.cells

let commit_id () =
  match Sys.getenv_opt "GITHUB_SHA" with
  | Some s when s <> "" -> s
  | _ -> (
    match Sys.getenv_opt "DISESIM_COMMIT" with
    | Some s when s <> "" -> s
    | _ -> "local")

let fixed_members =
  [
    "record"; "tool"; "suite"; "ts"; "commit"; "cells"; "passed";
    "pass_rate"; "wall_s"; "p50_ns"; "p95_ns"; "p99_ns";
  ]

let to_json r =
  Json.Obj
    ([
       ("record", Json.String "trajectory");
       ("tool", Json.String r.tool);
       ("suite", Json.String r.suite);
       ("ts", Json.Int r.ts);
       ("commit", Json.String r.commit);
       ("cells", Json.Int r.cells);
       ("passed", Json.Int r.passed);
       ("pass_rate", Json.Float (pass_rate r));
       ("wall_s", Json.Float r.wall_s);
       ("p50_ns", Json.Int r.p50_ns);
       ("p95_ns", Json.Int r.p95_ns);
       ("p99_ns", Json.Int r.p99_ns);
     ]
    @ List.filter (fun (k, _) -> not (List.mem k fixed_members)) r.extra)

let of_json doc =
  let str k = match Json.member k doc with Some (Json.String s) -> Some s | _ -> None in
  let int k = match Json.member k doc with Some (Json.Int i) -> Some i | _ -> None in
  let num k =
    match Json.member k doc with
    | Some (Json.Float f) -> Some f
    | Some (Json.Int i) -> Some (float_of_int i)
    | _ -> None
  in
  match
    (str "record", str "tool", str "suite", int "ts", str "commit",
     int "cells", int "passed", num "wall_s")
  with
  | ( Some "trajectory", Some tool, Some suite, Some ts, Some commit,
      Some cells, Some passed, Some wall_s ) ->
    let q k = Option.value ~default:0 (int k) in
    let extra =
      match doc with
      | Json.Obj kvs ->
        List.filter (fun (k, _) -> not (List.mem k fixed_members)) kvs
      | _ -> []
    in
    Some
      {
        tool; suite; ts; commit; cells; passed; wall_s;
        p50_ns = q "p50_ns"; p95_ns = q "p95_ns"; p99_ns = q "p99_ns";
        extra;
      }
  | _ -> None

let md_header =
  "# Results tracking\n\n\
   Machine-appended trajectory of the continuous conformance/perf \
   monitor\n\
   (`disesim conformance --track`) and the bench harness \
   (`dise-bench --trajectory`).\n\
   One row per run; the JSONL twin (RESULTS_TRACKING.jsonl, schema \
   doc/schema/trajectory.schema.json)\n\
   carries the full records. See doc/observability.md.\n\n\
   | date (utc) | commit | tool | suite | cells | passed | rate | \
   wall (s) | p50 (ns) | p95 (ns) | p99 (ns) |\n\
   |---|---|---|---|---|---|---|---|---|---|---|\n"

(* ts -> "YYYY-MM-DD HH:MM" without Unix.gmtime: civil-from-days on
   the epoch day count (valid for any post-1970 timestamp). *)
let date_of_ts ts =
  let secs = ts mod 86400 in
  let z = (ts / 86400) + 719468 in
  let era = z / 146097 in
  let doe = z mod 146097 in
  let yoe = (doe - (doe / 1460) + (doe / 36524) - (doe / 146096)) / 365 in
  let y = yoe + (era * 400) in
  let doy = doe - ((365 * yoe) + (yoe / 4) - (yoe / 100)) in
  let mp = ((5 * doy) + 2) / 153 in
  let d = doy - (((153 * mp) + 2) / 5) + 1 in
  let m = if mp < 10 then mp + 3 else mp - 9 in
  let y = if m <= 2 then y + 1 else y in
  (* civil-from-days uses a March-based year starting at 0000-03-01 *)
  Printf.sprintf "%04d-%02d-%02d %02d:%02d" y m d (secs / 3600)
    (secs mod 3600 / 60)

let short_commit c = if String.length c > 9 then String.sub c 0 9 else c

let md_row r =
  Printf.sprintf "| %s | %s | %s | %s | %d | %d | %.3f | %.3f | %d | %d | %d |\n"
    (date_of_ts r.ts) (short_commit r.commit) r.tool r.suite r.cells r.passed
    (pass_rate r) r.wall_s r.p50_ns r.p95_ns r.p99_ns

let append_string path ~header s =
  let fresh = not (Sys.file_exists path) in
  let oc = open_out_gen [ Open_append; Open_creat ] 0o644 path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      if fresh then output_string oc header;
      output_string oc s)

let append ?md ~jsonl r =
  append_string jsonl ~header:"" (Json.to_string (to_json r) ^ "\n");
  match md with
  | None -> ()
  | Some path -> append_string path ~header:md_header (md_row r)

let last ~jsonl ~tool ~suite =
  if not (Sys.file_exists jsonl) then None
  else begin
    let ic = open_in_bin jsonl in
    let best = ref None in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        try
          while true do
            let line = input_line ic in
            match Json.parse line with
            | exception Json.Parse_error _ -> ()
            | doc -> (
              match of_json doc with
              | Some r when r.tool = tool && r.suite = suite -> best := Some r
              | _ -> ())
          done
        with End_of_file -> ());
    !best
  end

let check_regression ?(threshold = 1.2) ~prev r =
  if pass_rate r < pass_rate prev then
    Error
      (Printf.sprintf
         "pass rate regressed: %.3f -> %.3f (previous record at commit %s)"
         (pass_rate prev) (pass_rate r) (short_commit prev.commit))
  else if prev.wall_s > 0. && r.wall_s > threshold *. prev.wall_s then
    Error
      (Printf.sprintf
         "wall-clock regressed by %.0f%%: %.3fs -> %.3fs exceeds the %.0f%% \
          budget (previous record at commit %s)"
         ((r.wall_s /. prev.wall_s -. 1.) *. 100.)
         prev.wall_s r.wall_s
         ((threshold -. 1.) *. 100.)
         (short_commit prev.commit))
  else Ok ()
