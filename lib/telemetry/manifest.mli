(** JSONL run manifests.

    One JSON object per line, appended as work completes. The harness
    writes a line per evaluated figure cell (with wall-clock and the
    worker domain that ran it) and a line per panel (with pool
    utilization); any layer can append its own records. Emission is
    mutex-serialized, so worker domains may log concurrently without
    interleaving lines. *)

type t

val to_channel : out_channel -> t
val to_buffer : Buffer.t -> t

val emit : t -> (string * Json.t) list -> unit
(** Append one object as a line. Thread-safe. *)

val lines : t -> int
(** Lines written so far. *)

val close : t -> unit
(** Flush (channel sinks). Idempotent; does not close the channel. *)
