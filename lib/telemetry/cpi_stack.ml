type t = {
  mutable base : int;
  mutable icache : int;
  mutable dcache : int;
  mutable branch : int;
  mutable rob : int;
  mutable dise_decode : int;
  mutable ptrt_miss : int;
  mutable rep_redirect : int;
}

let create () =
  {
    base = 0;
    icache = 0;
    dcache = 0;
    branch = 0;
    rob = 0;
    dise_decode = 0;
    ptrt_miss = 0;
    rep_redirect = 0;
  }

let total t =
  t.base + t.icache + t.dcache + t.branch + t.rob + t.dise_decode
  + t.ptrt_miss + t.rep_redirect

let bucket_names =
  [ "base"; "icache"; "dcache"; "branch"; "rob"; "dise_decode"; "ptrt_miss";
    "rep_redirect" ]

let to_list t =
  [
    ("base", t.base);
    ("icache", t.icache);
    ("dcache", t.dcache);
    ("branch", t.branch);
    ("rob", t.rob);
    ("dise_decode", t.dise_decode);
    ("ptrt_miss", t.ptrt_miss);
    ("rep_redirect", t.rep_redirect);
  ]

let to_json t = Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) (to_list t))

let of_json j =
  let field name =
    match Json.member name j with
    | Some (Json.Int v) -> Ok v
    | Some _ -> Error (Printf.sprintf "cpi_stack.%s: expected integer" name)
    | None -> Error (Printf.sprintf "cpi_stack.%s: missing" name)
  in
  let ( let* ) = Result.bind in
  let* base = field "base" in
  let* icache = field "icache" in
  let* dcache = field "dcache" in
  let* branch = field "branch" in
  let* rob = field "rob" in
  let* dise_decode = field "dise_decode" in
  let* ptrt_miss = field "ptrt_miss" in
  let* rep_redirect = field "rep_redirect" in
  Ok
    { base; icache; dcache; branch; rob; dise_decode; ptrt_miss; rep_redirect }

let check t ~cycles =
  let sum = total t in
  if sum <> cycles then
    failwith
      (Printf.sprintf
         "CPI-stack invariant violated: buckets sum to %d, cycles = %d (%s)"
         sum cycles
         (String.concat " "
            (List.map (fun (k, v) -> Printf.sprintf "%s=%d" k v) (to_list t))))

let pp ppf t =
  let sum = total t in
  let share v =
    if sum = 0 then 0. else 100. *. float_of_int v /. float_of_int sum
  in
  List.iter
    (fun (k, v) ->
      Format.fprintf ppf "  %-13s %10d  %5.1f%%@." k v (share v))
    (to_list t);
  Format.fprintf ppf "  %-13s %10d" "total" sum
