type error = {
  path : string;
  message : string;
}

let pp_error ppf e = Format.fprintf ppf "%s: %s" e.path e.message

let type_name (v : Json.t) =
  match v with
  | Json.Null -> "null"
  | Json.Bool _ -> "boolean"
  | Json.Int _ -> "integer"
  | Json.Float _ -> "number"
  | Json.String _ -> "string"
  | Json.List _ -> "array"
  | Json.Obj _ -> "object"

let matches_type (v : Json.t) name =
  match name with
  | "integer" -> ( match v with Json.Int _ -> true | _ -> false)
  | "number" -> ( match v with Json.Int _ | Json.Float _ -> true | _ -> false)
  | other -> type_name v = other

let rec equal_json (a : Json.t) (b : Json.t) =
  match a, b with
  | Json.Int i, Json.Float f | Json.Float f, Json.Int i ->
    float_of_int i = f
  | Json.List xs, Json.List ys ->
    List.length xs = List.length ys && List.for_all2 equal_json xs ys
  | Json.Obj xs, Json.Obj ys ->
    List.length xs = List.length ys
    && List.for_all
         (fun (k, v) ->
           match List.assoc_opt k ys with
           | Some v' -> equal_json v v'
           | None -> false)
         xs
  | a, b -> a = b

let rec check ~path (schema : Json.t) (v : Json.t) errors =
  match schema with
  | Json.Bool true -> errors
  | Json.Bool false -> { path; message = "schema rejects everything" } :: errors
  | Json.Obj kvs ->
    let errors =
      match List.assoc_opt "type" kvs with
      | Some (Json.String name) ->
        if matches_type v name then errors
        else
          { path;
            message = Printf.sprintf "expected %s, got %s" name (type_name v) }
          :: errors
      | Some (Json.List names) ->
        let names =
          List.filter_map
            (function Json.String s -> Some s | _ -> None)
            names
        in
        if List.exists (matches_type v) names then errors
        else
          { path;
            message =
              Printf.sprintf "expected one of [%s], got %s"
                (String.concat ", " names) (type_name v) }
          :: errors
      | _ -> errors
    in
    let errors =
      match List.assoc_opt "const" kvs with
      | Some c when not (equal_json c v) ->
        { path; message = "does not match const" } :: errors
      | _ -> errors
    in
    let errors =
      match List.assoc_opt "enum" kvs with
      | Some (Json.List allowed) when not (List.exists (equal_json v) allowed)
        ->
        { path; message = "not a member of enum" } :: errors
      | _ -> errors
    in
    let errors =
      match List.assoc_opt "minimum" kvs, v with
      | Some (Json.Int m), Json.Int i when i < m ->
        { path; message = Printf.sprintf "%d below minimum %d" i m } :: errors
      | Some (Json.Int m), Json.Float f when f < float_of_int m ->
        { path; message = Printf.sprintf "%g below minimum %d" f m } :: errors
      | Some (Json.Float m), Json.Int i when float_of_int i < m ->
        { path; message = Printf.sprintf "%d below minimum %g" i m } :: errors
      | Some (Json.Float m), Json.Float f when f < m ->
        { path; message = Printf.sprintf "%g below minimum %g" f m } :: errors
      | _ -> errors
    in
    (match v with
    | Json.Obj fields ->
      let props =
        match List.assoc_opt "properties" kvs with
        | Some (Json.Obj props) -> props
        | _ -> []
      in
      let errors =
        match List.assoc_opt "required" kvs with
        | Some (Json.List req) ->
          List.fold_left
            (fun errors r ->
              match r with
              | Json.String name when List.mem_assoc name fields |> not ->
                { path; message = Printf.sprintf "missing required key %S" name }
                :: errors
              | _ -> errors)
            errors req
        | _ -> errors
      in
      let errors =
        List.fold_left
          (fun errors (k, sub) ->
            match List.assoc_opt k props with
            | Some sub_schema ->
              check ~path:(path ^ "/" ^ k) sub_schema sub errors
            | None -> (
              match List.assoc_opt "additionalProperties" kvs with
              | Some (Json.Bool false) ->
                { path; message = Printf.sprintf "unexpected key %S" k }
                :: errors
              | Some (Json.Obj _ as sub_schema) ->
                check ~path:(path ^ "/" ^ k) sub_schema sub errors
              | _ -> errors))
          errors fields
      in
      errors
    | Json.List items -> (
      match List.assoc_opt "items" kvs with
      | Some item_schema ->
        List.fold_left
          (fun (i, errors) item ->
            ( i + 1,
              check ~path:(Printf.sprintf "%s/%d" path i) item_schema item
                errors ))
          (0, errors) items
        |> snd
      | None -> errors)
    | _ -> errors)
  | _ -> { path; message = "schema is not an object or boolean" } :: errors

let validate ~schema v = List.rev (check ~path:"" schema v [])
