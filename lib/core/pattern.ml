module I = Dise_isa.Insn
module Op = Dise_isa.Opcode
module Reg = Dise_isa.Reg

type imm_pred =
  | Imm_eq of int
  | Imm_neg
  | Imm_nonneg

type t = {
  opcode_key : int option;
  opclass : Op.cls option;
  rs : Reg.t option;
  rt : Reg.t option;
  rd : Reg.t option;
  imm : imm_pred option;
}

let any =
  { opcode_key = None; opclass = None; rs = None; rt = None; rd = None;
    imm = None }

let of_class c = { any with opclass = Some c }
let of_opcode i = { any with opcode_key = Some (I.key i) }
let loads = of_class Op.C_load
let stores = of_class Op.C_store
let cond_branches = of_class Op.C_branch
let indirect_jumps = of_class Op.C_ijump

let codewords n =
  of_opcode (I.codeword ~op:n ~p1:0 ~p2:0 ~p3:0 ~tag:0)

let with_rs r t = { t with rs = Some r }
let with_rt r t = { t with rt = Some r }
let with_rd r t = { t with rd = Some r }
let with_imm p t = { t with imm = Some p }

let imm_matches pred v =
  match pred with
  | Imm_eq x -> v = x
  | Imm_neg -> v < 0
  | Imm_nonneg -> v >= 0

let field_matches want got =
  match want with
  | None -> true
  | Some w -> ( match got with Some g -> Reg.equal w g | None -> false)

let matches t insn =
  (match t.opcode_key with None -> true | Some k -> I.key insn = k)
  && (match t.opclass with None -> true | Some c -> I.cls insn = c)
  && field_matches t.rs (I.rs insn)
  && field_matches t.rt (I.rt insn)
  && field_matches t.rd (I.rd insn)
  &&
  match t.imm with
  | None -> true
  | Some pred -> (
    match I.imm insn with Some v -> imm_matches pred v | None -> false)

let specificity t =
  (match t.opcode_key with Some _ -> 6 | None -> 0)
  + (match t.opclass with Some _ -> 4 | None -> 0)
  + (match t.rs with Some _ -> 5 | None -> 0)
  + (match t.rt with Some _ -> 5 | None -> 0)
  + (match t.rd with Some _ -> 5 | None -> 0)
  + (match t.imm with
    | Some (Imm_eq _) -> 16
    | Some (Imm_neg | Imm_nonneg) -> 1
    | None -> 0)

let all_keys =
  let rec go i acc = if i < 0 then acc else go (i - 1) (i :: acc) in
  go (I.num_keys - 1) []

let dispatch_keys t =
  match t.opcode_key, t.opclass with
  | Some k, None -> [ k ]
  | Some k, Some c -> if List.mem k (I.keys_of_class c) then [ k ] else []
  | None, Some c -> I.keys_of_class c
  | None, None -> all_keys

let subsumes_key t k = List.mem k (dispatch_keys t)

let equal (a : t) (b : t) = a = b

let pp ppf t =
  let parts = ref [] in
  let add fmt = Printf.ksprintf (fun s -> parts := s :: !parts) fmt in
  (match t.opcode_key with
  | Some k -> add "T.OP==%s" (I.mnemonic_of_key k)
  | None -> ());
  (match t.opclass with
  | Some c -> add "T.OPCLASS==%s" (Op.cls_to_string c)
  | None -> ());
  (match t.rs with Some r -> add "T.RS==%s" (Reg.to_string r) | None -> ());
  (match t.rt with Some r -> add "T.RT==%s" (Reg.to_string r) | None -> ());
  (match t.rd with Some r -> add "T.RD==%s" (Reg.to_string r) | None -> ());
  (match t.imm with
  | Some (Imm_eq v) -> add "T.IMM==%d" v
  | Some Imm_neg -> add "T.IMM<0"
  | Some Imm_nonneg -> add "T.IMM>=0"
  | None -> ());
  match List.rev !parts with
  | [] -> Format.pp_print_string ppf "T.ANY"
  | ps -> Format.pp_print_string ppf (String.concat " && " ps)
