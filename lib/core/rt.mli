(** Replacement table model.

    The RT is a small cache of replacement-sequence instructions. Each
    entry corresponds to one instruction of a sequence, tagged by
    (sequence id, DISEPC). Sequential instructions may be coalesced
    into blocks, trading read ports for internal fragmentation; the
    block size is the [entries_per_block] parameter.

    An access touches every block of the sequence being expanded. If
    any block is absent the access is a miss: the paper's controller
    flushes the pipeline and loads the whole sequence procedurally, so
    we model one miss event per expansion and fill all of its blocks.

    The default evaluation configurations are 512 or 2K entries,
    direct-mapped or 2-way set-associative, and the perfect (infinite)
    RT used by Figure 7's performance panel. *)

type t

val create : ?entries_per_block:int -> entries:int -> assoc:int -> unit -> t
(** [entries] must be a positive multiple of [assoc * entries_per_block].
    Default [entries_per_block] is 1. *)

val perfect : unit -> t
(** An RT that never misses. *)

val access : t -> rsid:int -> len:int -> [ `Hit | `Miss ]
(** Expansion of sequence [rsid] whose instantiated length is [len]
    instructions. *)

val invalidate : t -> unit
(** Drop all contents (context switch / production-set swap). *)

val accesses : t -> int
val misses : t -> int
val occupancy : t -> int
(** Resident blocks. *)

val capacity_blocks : t -> int
val is_perfect : t -> bool
val miss_rate : t -> float
