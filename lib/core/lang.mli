(** Textual production language.

    The external, directive-annotated representation of productions
    that users hand to the DISE controller. The syntax follows the
    paper's figures:

    {v
    ; memory fault isolation (Figure 1)
    P1: T.OPCLASS == store -> R1
    P2: T.OPCLASS == load -> R1
    R1: srl T.RS, #26, $dr1
        xor $dr1, $dr2, $dr1
        bne $dr1, error
        T.INSN
    v}

    Pattern conditions (combined with [&&]): [T.OPCLASS == <class>],
    [T.OP == <mnemonic>] (immediate ALU forms take an [i] suffix:
    [addi], [srli], ...; codewords are [cw0]..[cw3]), [T.RS == <reg>],
    [T.RT ==], [T.RD ==], [T.IMM == <n>], [T.IMM < 0], [T.IMM >= 0].
    A production's right-hand side is a sequence name [R<n>] or [TAG]
    (aware ACFs: the sequence id comes from the codeword tag).

    Replacement operands may be literals ([r4], [$dr1], [#26]),
    trigger fields ([T.RS], [T.RT], [T.RD], [#T.IMM], [#T.PC]),
    codeword parameters ([T.P1].. as registers, [#T.P1], [#T.P1P2] as
    immediates), or [T.INSN] for the whole trigger. Branch targets may
    be labels (resolved later against an image), [0x] addresses, or
    [T.PC+T.P1] / [T.PC+T.P1P2] parameterized offsets. *)

exception Parse_error of int * string
(** 1-based line number and message. *)

val parse : string -> Prodset.t
(** Parse a production-set source. Sequence names [R<n>] bind sequence
    id [n]. *)

val parse_result :
  ?source:string -> string -> (Prodset.t, Dise_isa.Diag.t) result
(** Exception-free {!parse}: a failure becomes [Error (Diag.Parse _)]
    carrying [source] (default ["<productions>"]) and the 1-based
    line, so every front end reports DSL errors through the shared
    {!Dise_isa.Diag} printer and exit codes. *)

val parse_rinsn : string -> Replacement.rinsn
(** Parse a single replacement instruction. *)

val production_to_string : Production.t -> string
val sequence_to_string : int * Replacement.t -> string

val to_string : Prodset.t -> string
(** Render a production set back to (re-parseable) source. *)
