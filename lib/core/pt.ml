module I = Dise_isa.Insn

type t = {
  capacity : int;
  active : int array;        (* active pattern count per opcode key *)
  resident : int array;      (* resident pattern count per opcode key *)
  last_use : int array;      (* LRU timestamp per opcode key *)
  mutable occupancy : int;
  mutable clock : int;
  mutable accesses : int;
  mutable misses : int;
  total_active : int;
}

let create ~capacity prodset =
  let active = Array.make I.num_keys 0 in
  for key = 0 to I.num_keys - 1 do
    active.(key) <- List.length (Prodset.patterns_for_key prodset key)
  done;
  {
    capacity;
    active;
    resident = Array.make I.num_keys 0;
    last_use = Array.make I.num_keys 0;
    occupancy = 0;
    clock = 0;
    accesses = 0;
    misses = 0;
    total_active = Array.fold_left ( + ) 0 active;
  }

(* Evict the LRU resident opcode group to make room. *)
let evict_one t =
  let victim = ref (-1) and oldest = ref max_int in
  for key = 0 to I.num_keys - 1 do
    if t.resident.(key) > 0 && t.last_use.(key) < !oldest then begin
      oldest := t.last_use.(key);
      victim := key
    end
  done;
  if !victim >= 0 then begin
    t.occupancy <- t.occupancy - t.resident.(!victim);
    t.resident.(!victim) <- 0
  end

let access t ~key =
  t.accesses <- t.accesses + 1;
  t.clock <- t.clock + 1;
  let need = t.active.(key) in
  if need = 0 || t.resident.(key) = need then begin
    if need > 0 then t.last_use.(key) <- t.clock;
    `Hit
  end
  else begin
    t.misses <- t.misses + 1;
    (* Fill all patterns for this opcode, evicting whole opcode groups
       until they fit (a group larger than the PT is truncated to
       capacity; it will simply re-miss, as real hardware would
       thrash). *)
    let fill = min need t.capacity in
    t.occupancy <- t.occupancy - t.resident.(key);
    t.resident.(key) <- 0;
    while t.occupancy + fill > t.capacity do
      evict_one t
    done;
    t.resident.(key) <- fill;
    t.occupancy <- t.occupancy + fill;
    t.last_use.(key) <- t.clock;
    `Miss fill
  end

let invalidate t =
  Array.fill t.resident 0 (Array.length t.resident) 0;
  t.occupancy <- 0

let resident_patterns t = t.occupancy
let accesses t = t.accesses
let misses t = t.misses
let active_patterns t = t.total_active
