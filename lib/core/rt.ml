type way = {
  mutable tag : int;  (* (rsid lsl 12) lor block index; -1 = invalid *)
  mutable lru : int;
}

type t = {
  perfect : bool;
  n_sets : int;
  assoc : int;
  entries_per_block : int;
  index_mask : int;
      (* n_sets - 1 when n_sets is a power of two (the common case),
         letting [set_index] mask instead of divide; -1 selects the
         general modulus. Identical indices either way. *)
  blocks_for_len : int array;
      (* len -> ceil(len / entries_per_block), precomputed at
         construction for every length up to [max_precomputed_len] so
         the access path never divides. *)
  sets : way array array;
  mutable clock : int;
  mutable accesses : int;
  mutable misses : int;
  mutable resident : int;
}

let max_precomputed_len = 256

let precompute_blocks epb =
  Array.init (max_precomputed_len + 1) (fun len -> (len + epb - 1) / epb)

let create ?(entries_per_block = 1) ~entries ~assoc () =
  if entries <= 0 || assoc <= 0 || entries_per_block <= 0 then
    invalid_arg "Rt.create: non-positive parameter";
  if entries mod (assoc * entries_per_block) <> 0 then
    invalid_arg "Rt.create: entries not divisible by assoc * block";
  let n_sets = entries / (assoc * entries_per_block) in
  {
    perfect = false;
    n_sets;
    assoc;
    entries_per_block;
    index_mask = (if n_sets land (n_sets - 1) = 0 then n_sets - 1 else -1);
    blocks_for_len = precompute_blocks entries_per_block;
    sets =
      Array.init n_sets (fun _ ->
          Array.init assoc (fun _ -> { tag = -1; lru = 0 }));
    clock = 0;
    accesses = 0;
    misses = 0;
    resident = 0;
  }

let perfect () =
  {
    perfect = true;
    n_sets = 0;
    assoc = 0;
    entries_per_block = 1;
    index_mask = -1;
    blocks_for_len = [||];
    sets = [||];
    clock = 0;
    accesses = 0;
    misses = 0;
    resident = 0;
  }

let block_tag ~rsid ~blk = (rsid lsl 12) lor blk

(* A multiplicative hash spreads sequence ids across sets. The index
   is taken from the product's high bits: [n_sets] is typically a power
   of two, and a low-bits modulus would discard the sequence-id part of
   the tag (which lives above bit 12). *)
let set_index t tag =
  let h = tag * 0x9E3779B1 land max_int in
  let h = h lsr 16 in
  if t.index_mask >= 0 then h land t.index_mask else h mod t.n_sets

let probe t tag =
  let set = t.sets.(set_index t tag) in
  let rec go i = if i >= t.assoc then None
    else if set.(i).tag = tag then Some set.(i)
    else go (i + 1)
  in
  go 0

let fill t tag =
  let set = t.sets.(set_index t tag) in
  (* Reuse an invalid way, else evict LRU. *)
  let victim = ref set.(0) in
  Array.iter
    (fun w ->
      if w.tag = -1 && !victim.tag <> -1 then victim := w
      else if w.tag <> -1 && !victim.tag <> -1 && w.lru < !victim.lru then
        victim := w)
    set;
  if !victim.tag = -1 then t.resident <- t.resident + 1;
  !victim.tag <- tag;
  !victim.lru <- t.clock

let blocks_of_len t len =
  if len <= max_precomputed_len && not t.perfect then
    Array.unsafe_get t.blocks_for_len len
  else (len + t.entries_per_block - 1) / t.entries_per_block

let access t ~rsid ~len =
  t.accesses <- t.accesses + 1;
  if t.perfect then `Hit
  else begin
    t.clock <- t.clock + 1;
    let blocks = blocks_of_len t (max 1 len) in
    let all_hit = ref true in
    for blk = 0 to blocks - 1 do
      match probe t (block_tag ~rsid ~blk) with
      | Some w -> w.lru <- t.clock
      | None -> all_hit := false
    done;
    if !all_hit then `Hit
    else begin
      t.misses <- t.misses + 1;
      for blk = 0 to blocks - 1 do
        let tag = block_tag ~rsid ~blk in
        match probe t tag with
        | Some w -> w.lru <- t.clock
        | None -> fill t tag
      done;
      `Miss
    end
  end

let invalidate t =
  Array.iter
    (fun set ->
      Array.iter
        (fun w ->
          w.tag <- -1;
          w.lru <- 0)
        set)
    t.sets;
  t.resident <- 0

let accesses t = t.accesses
let misses t = t.misses
let occupancy t = t.resident
let capacity_blocks t = t.n_sets * t.assoc
let is_perfect t = t.perfect
let miss_rate t =
  if t.accesses = 0 then 0. else float_of_int t.misses /. float_of_int t.accesses
