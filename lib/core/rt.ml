type way = {
  mutable tag : int;  (* (rsid lsl 12) lor block index; -1 = invalid *)
  mutable lru : int;
}

type t = {
  perfect : bool;
  n_sets : int;
  assoc : int;
  entries_per_block : int;
  sets : way array array;
  mutable clock : int;
  mutable accesses : int;
  mutable misses : int;
  mutable resident : int;
}

let create ?(entries_per_block = 1) ~entries ~assoc () =
  if entries <= 0 || assoc <= 0 || entries_per_block <= 0 then
    invalid_arg "Rt.create: non-positive parameter";
  if entries mod (assoc * entries_per_block) <> 0 then
    invalid_arg "Rt.create: entries not divisible by assoc * block";
  let n_sets = entries / (assoc * entries_per_block) in
  {
    perfect = false;
    n_sets;
    assoc;
    entries_per_block;
    sets =
      Array.init n_sets (fun _ ->
          Array.init assoc (fun _ -> { tag = -1; lru = 0 }));
    clock = 0;
    accesses = 0;
    misses = 0;
    resident = 0;
  }

let perfect () =
  {
    perfect = true;
    n_sets = 0;
    assoc = 0;
    entries_per_block = 1;
    sets = [||];
    clock = 0;
    accesses = 0;
    misses = 0;
    resident = 0;
  }

let block_tag ~rsid ~blk = (rsid lsl 12) lor blk

(* A multiplicative hash spreads sequence ids across sets. The index
   is taken from the product's high bits: [n_sets] is typically a power
   of two, and a low-bits modulus would discard the sequence-id part of
   the tag (which lives above bit 12). *)
let set_index t tag =
  let h = tag * 0x9E3779B1 land max_int in
  (h lsr 16) mod t.n_sets

let probe t tag =
  let set = t.sets.(set_index t tag) in
  let rec go i = if i >= t.assoc then None
    else if set.(i).tag = tag then Some set.(i)
    else go (i + 1)
  in
  go 0

let fill t tag =
  let set = t.sets.(set_index t tag) in
  (* Reuse an invalid way, else evict LRU. *)
  let victim = ref set.(0) in
  Array.iter
    (fun w ->
      if w.tag = -1 && !victim.tag <> -1 then victim := w
      else if w.tag <> -1 && !victim.tag <> -1 && w.lru < !victim.lru then
        victim := w)
    set;
  if !victim.tag = -1 then t.resident <- t.resident + 1;
  !victim.tag <- tag;
  !victim.lru <- t.clock

let blocks_of_len t len =
  (len + t.entries_per_block - 1) / t.entries_per_block

let access t ~rsid ~len =
  t.accesses <- t.accesses + 1;
  if t.perfect then `Hit
  else begin
    t.clock <- t.clock + 1;
    let blocks = blocks_of_len t (max 1 len) in
    let all_hit = ref true in
    for blk = 0 to blocks - 1 do
      match probe t (block_tag ~rsid ~blk) with
      | Some w -> w.lru <- t.clock
      | None -> all_hit := false
    done;
    if !all_hit then `Hit
    else begin
      t.misses <- t.misses + 1;
      for blk = 0 to blocks - 1 do
        let tag = block_tag ~rsid ~blk in
        match probe t tag with
        | Some w -> w.lru <- t.clock
        | None -> fill t tag
      done;
      `Miss
    end
  end

let invalidate t =
  Array.iter
    (fun set ->
      Array.iter
        (fun w ->
          w.tag <- -1;
          w.lru <- 0)
        set)
    t.sets;
  t.resident <- 0

let accesses t = t.accesses
let misses t = t.misses
let occupancy t = t.resident
let capacity_blocks t = t.n_sets * t.assoc
let is_perfect t = t.perfect
let miss_rate t =
  if t.accesses = 0 then 0. else float_of_int t.misses /. float_of_int t.accesses
