module I = Dise_isa.Insn
module Op = Dise_isa.Opcode
module Reg = Dise_isa.Reg

type rreg =
  | Rlit of Reg.t
  | Rrs | Rrt | Rrd
  | Rparam of int

type rimm =
  | Ilit of int
  | Iimm
  | Ipc
  | Iparam of int
  | Iparam2 of int

type rtarget =
  | Tabs of int
  | Tlab of string
  | Trel_param of int
  | Trel_param2 of int

type rinsn =
  | Trigger
  | Rop of Op.rop * rreg * rreg * rreg
  | Ropi of Op.rop * rreg * rimm * rreg
  | Lda of rreg * rimm * rreg
  | Lui of rimm * rreg
  | Mem of Op.mop * rreg * rimm * rreg
  | Br of Op.bop * rreg * rtarget
  | Jmp of rtarget
  | Jal of rtarget
  | Jr of rreg
  | Jalr of rreg * rreg
  | Dbr of Op.bop * rreg * int
  | Djmp of int
  | Nop
  | Halt

type t = rinsn array

exception Instantiation_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Instantiation_error s)) fmt

let signed5 v = if v land 0x10 <> 0 then (v land 0x1F) - 32 else v land 0x1F

let to_field5 v =
  if v < -16 || v > 15 then fail "value %d does not fit a 5-bit parameter" v
  else v land 0x1F

let signed10 hi lo =
  let v = ((hi land 0x1F) lsl 5) lor (lo land 0x1F) in
  if v land 0x200 <> 0 then v - 1024 else v

let to_fields10 v =
  if v < -512 || v > 511 then
    fail "value %d does not fit a 10-bit parameter pair" v
  else
    let v = v land 0x3FF in
    ((v lsr 5) land 0x1F, v land 0x1F)

let param_of_trigger trigger i =
  match trigger with
  | I.Codeword { p1; p2; p3; _ } -> (
    match i with
    | 1 -> p1
    | 2 -> p2
    | 3 -> p3
    | _ -> fail "parameter index %d out of range" i)
  | _ -> fail "T.P%d directive on a non-codeword trigger" i

let inst_reg trigger = function
  | Rlit r -> r
  | Rrs -> (
    match I.rs trigger with
    | Some r -> r
    | None -> fail "T.RS: trigger has no rs field")
  | Rrt -> (
    match I.rt trigger with
    | Some r -> r
    | None -> fail "T.RT: trigger has no rt field")
  | Rrd -> (
    match I.rd trigger with
    | Some r -> r
    | None -> fail "T.RD: trigger has no rd field")
  | Rparam i -> Reg.r (param_of_trigger trigger i)

let inst_imm trigger pc = function
  | Ilit v -> v
  | Iimm -> (
    match I.imm trigger with
    | Some v -> v
    | None -> fail "T.IMM: trigger has no immediate field")
  | Ipc -> pc
  | Iparam i -> signed5 (param_of_trigger trigger i)
  | Iparam2 i ->
    signed10 (param_of_trigger trigger i) (param_of_trigger trigger (i + 1))

let inst_target trigger pc = function
  | Tabs a -> I.Abs a
  | Tlab l -> fail "unresolved replacement label %s" l
  | Trel_param i -> I.Abs (pc + (4 * signed5 (param_of_trigger trigger i)))
  | Trel_param2 i ->
    I.Abs
      (pc
      + 4
        * signed10 (param_of_trigger trigger i)
            (param_of_trigger trigger (i + 1)))

let inst_rinsn trigger pc spec =
  let reg = inst_reg trigger in
  let imm = inst_imm trigger pc in
  let tgt = inst_target trigger pc in
  match spec with
  | Trigger -> trigger
  | Rop (op, a, b, c) -> I.Rop (op, reg a, reg b, reg c)
  | Ropi (op, a, v, c) -> I.Ropi (op, reg a, imm v, reg c)
  | Lda (base, off, rd) -> I.Lda (reg base, imm off, reg rd)
  | Lui (v, rd) -> I.Lui (imm v, reg rd)
  | Mem (op, base, off, data) -> I.Mem (op, reg base, imm off, reg data)
  | Br (op, r, t) -> I.Br (op, reg r, tgt t)
  | Jmp t -> I.Jmp (tgt t)
  | Jal t -> I.Jal (tgt t)
  | Jr r -> I.Jr (reg r)
  | Jalr (r, d) -> I.Jalr (reg r, reg d)
  | Dbr (op, r, off) -> I.Dbr (op, reg r, off)
  | Djmp off -> I.Djmp off
  | Nop -> I.Nop
  | Halt -> I.Halt

let instantiate t ~trigger ~pc =
  Array.map (inst_rinsn trigger pc) t

let resolve_labels lookup t =
  let tgt = function
    | Tlab l -> (
      match lookup l with
      | Some a -> Tabs a
      | None -> fail "unknown label %s in replacement sequence" l)
    | other -> other
  in
  Array.map
    (function
      | Br (op, r, t) -> Br (op, r, tgt t)
      | Jmp t -> Jmp (tgt t)
      | Jal t -> Jal (tgt t)
      | other -> other)
    t

let reg_dedicated acc = function
  | Rlit (Reg.D n) -> n :: acc
  | Rlit (Reg.R _) | Rrs | Rrt | Rrd | Rparam _ -> acc

let rinsn_regs = function
  | Trigger | Djmp _ | Nop | Halt | Lui _ | Jmp _ | Jal _ -> []
  | Rop (_, a, b, c) -> [ a; b; c ]
  | Ropi (_, a, _, c) -> [ a; c ]
  | Lda (a, _, c) -> [ a; c ]
  | Mem (_, a, _, c) -> [ a; c ]
  | Br (_, r, _) | Jr r | Dbr (_, r, _) -> [ r ]
  | Jalr (a, b) -> [ a; b ]

let rinsn_regs_full i =
  match i with
  | Lui (_, rd) -> [ rd ]
  | _ -> rinsn_regs i

let dedicated_used t =
  Array.fold_left
    (fun acc i -> List.fold_left reg_dedicated acc (rinsn_regs_full i))
    [] t
  |> List.sort_uniq compare

let rename_dedicated f t =
  let reg = function
    | Rlit (Reg.D n) -> Rlit (Reg.d (f n))
    | other -> other
  in
  Array.map
    (function
      | Trigger -> Trigger
      | Rop (op, a, b, c) -> Rop (op, reg a, reg b, reg c)
      | Ropi (op, a, v, c) -> Ropi (op, reg a, v, reg c)
      | Lda (a, v, c) -> Lda (reg a, v, reg c)
      | Lui (v, c) -> Lui (v, reg c)
      | Mem (op, a, v, c) -> Mem (op, reg a, v, reg c)
      | Br (op, r, tg) -> Br (op, reg r, tg)
      | Jmp tg -> Jmp tg
      | Jal tg -> Jal tg
      | Jr r -> Jr (reg r)
      | Jalr (a, b) -> Jalr (reg a, reg b)
      | Dbr (op, r, off) -> Dbr (op, reg r, off)
      | Djmp off -> Djmp off
      | Nop -> Nop
      | Halt -> Halt)
    t

let reg_static = function Rlit _ -> true | Rrs | Rrt | Rrd | Rparam _ -> false
let imm_static = function Ilit _ -> true | Iimm | Ipc | Iparam _ | Iparam2 _ -> false

let target_static = function
  | Tabs _ | Tlab _ -> true
  | Trel_param _ | Trel_param2 _ -> false

let rinsn_static = function
  | Trigger -> false
  | Rop (_, a, b, c) -> reg_static a && reg_static b && reg_static c
  | Ropi (_, a, v, c) -> reg_static a && imm_static v && reg_static c
  | Lda (a, v, c) -> reg_static a && imm_static v && reg_static c
  | Lui (v, c) -> imm_static v && reg_static c
  | Mem (_, a, v, c) -> reg_static a && imm_static v && reg_static c
  | Br (_, r, t) -> reg_static r && target_static t
  | Jmp t | Jal t -> target_static t
  | Jr r -> reg_static r
  | Jalr (a, b) -> reg_static a && reg_static b
  | Dbr (_, r, _) -> reg_static r
  | Djmp _ | Nop | Halt -> true

let is_static t = Array.for_all rinsn_static t

let reg_param = function Rparam _ -> true | Rlit _ | Rrs | Rrt | Rrd -> false
let imm_param = function
  | Iparam _ | Iparam2 _ -> true
  | Ilit _ | Iimm | Ipc -> false

let target_param = function
  | Trel_param _ | Trel_param2 _ -> true
  | Tabs _ | Tlab _ -> false

let rinsn_params = function
  | Trigger | Nop | Halt | Djmp _ -> false
  | Rop (_, a, b, c) -> reg_param a || reg_param b || reg_param c
  | Ropi (_, a, v, c) -> reg_param a || imm_param v || reg_param c
  | Lda (a, v, c) -> reg_param a || imm_param v || reg_param c
  | Lui (v, c) -> imm_param v || reg_param c
  | Mem (_, a, v, c) -> reg_param a || imm_param v || reg_param c
  | Br (_, r, t) -> reg_param r || target_param t
  | Jmp t | Jal t -> target_param t
  | Jr r -> reg_param r
  | Jalr (a, b) -> reg_param a || reg_param b
  | Dbr (_, r, _) -> reg_param r

let uses_params t = Array.exists rinsn_params t

let of_insn (i : I.t) =
  match i with
  | I.Rop (op, a, b, c) -> Rop (op, Rlit a, Rlit b, Rlit c)
  | I.Ropi (op, a, v, c) -> Ropi (op, Rlit a, Ilit v, Rlit c)
  | I.Lda (a, v, c) -> Lda (Rlit a, Ilit v, Rlit c)
  | I.Lui (v, c) -> Lui (Ilit v, Rlit c)
  | I.Mem (op, a, v, c) -> Mem (op, Rlit a, Ilit v, Rlit c)
  | I.Br (op, r, I.Abs a) -> Br (op, Rlit r, Tabs a)
  | I.Br (op, r, I.Lab l) -> Br (op, Rlit r, Tlab l)
  | I.Jmp (I.Abs a) -> Jmp (Tabs a)
  | I.Jmp (I.Lab l) -> Jmp (Tlab l)
  | I.Jal (I.Abs a) -> Jal (Tabs a)
  | I.Jal (I.Lab l) -> Jal (Tlab l)
  | I.Jr r -> Jr (Rlit r)
  | I.Jalr (a, b) -> Jalr (Rlit a, Rlit b)
  | I.Dbr (op, r, off) -> Dbr (op, Rlit r, off)
  | I.Djmp off -> Djmp off
  | I.Codeword _ ->
    invalid_arg "Replacement.of_insns: codeword in replacement sequence"
  | I.Nop -> Nop
  | I.Halt -> Halt

let of_insns insns = Array.of_list (List.map of_insn insns)

let identity = [| Trigger |]
let length = Array.length
let equal (a : t) (b : t) = a = b

let pp_rreg ppf = function
  | Rlit r -> Reg.pp ppf r
  | Rrs -> Format.pp_print_string ppf "T.RS"
  | Rrt -> Format.pp_print_string ppf "T.RT"
  | Rrd -> Format.pp_print_string ppf "T.RD"
  | Rparam i -> Format.fprintf ppf "T.P%d" i

let pp_rimm ppf = function
  | Ilit v -> Format.fprintf ppf "#%d" v
  | Iimm -> Format.pp_print_string ppf "#T.IMM"
  | Ipc -> Format.pp_print_string ppf "#T.PC"
  | Iparam i -> Format.fprintf ppf "#T.P%d" i
  | Iparam2 i -> Format.fprintf ppf "#T.P%dP%d" i (i + 1)

let pp_rtarget ppf = function
  | Tabs a -> Format.fprintf ppf "0x%x" a
  | Tlab l -> Format.pp_print_string ppf l
  | Trel_param i -> Format.fprintf ppf "T.PC+T.P%d" i
  | Trel_param2 i -> Format.fprintf ppf "T.PC+T.P%dP%d" i (i + 1)

let pp_rinsn ppf i =
  let pr fmt = Format.fprintf ppf fmt in
  match i with
  | Trigger -> pr "T.INSN"
  | Rop (op, a, b, c) ->
    pr "%s %a, %a, %a" (Op.rop_to_string op) pp_rreg a pp_rreg b pp_rreg c
  | Ropi (op, a, v, c) ->
    pr "%s %a, %a, %a" (Op.rop_to_string op) pp_rreg a pp_rimm v pp_rreg c
  | Lda (base, off, rd) -> pr "lda %a, %a(%a)" pp_rreg rd pp_rimm off pp_rreg base
  | Lui (v, rd) -> pr "lui %a, %a" pp_rimm v pp_rreg rd
  | Mem (op, base, off, data) ->
    pr "%s %a, %a(%a)" (Op.mop_to_string op) pp_rreg data pp_rimm off pp_rreg
      base
  | Br (op, r, t) -> pr "%s %a, %a" (Op.bop_to_string op) pp_rreg r pp_rtarget t
  | Jmp t -> pr "jmp %a" pp_rtarget t
  | Jal t -> pr "jal %a" pp_rtarget t
  | Jr r -> pr "jr %a" pp_rreg r
  | Jalr (a, b) -> pr "jalr %a, %a" pp_rreg a pp_rreg b
  | Dbr (op, r, off) -> pr "d%s %a, @%d" (Op.bop_to_string op) pp_rreg r off
  | Djmp off -> pr "djmp @%d" off
  | Nop -> pr "nop"
  | Halt -> pr "halt"

let pp ppf t =
  Array.iteri
    (fun i r ->
      if i > 0 then Format.pp_print_newline ppf ();
      Format.fprintf ppf "  %a" pp_rinsn r)
    t
