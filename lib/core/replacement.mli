(** Replacement sequence specifications and their instantiation.

    Each field of a replacement instruction carries a {e directive}:
    it is either a literal (including DISE dedicated registers) or is
    instantiated from the trigger — its register fields ([T.RS],
    [T.RT], [T.RD]), its immediate ([T.IMM]), its PC ([T.PC]), or, for
    aware ACFs, the codeword parameter fields ([T.P1]..[T.P3]).
    [Trigger] stands for [T.INSN], the fetched instruction itself.

    Codeword immediate parameters are 5-bit signed values; a branch
    offset may combine two adjacent parameter fields into a 10-bit
    signed value ([Iparam2]), scaled by 4 bytes — this is the mechanism
    that lets the compressor parameterize PC-relative branch offsets
    and share one dictionary entry between static branches whose
    offsets diverge after compression. *)

type rreg =
  | Rlit of Dise_isa.Reg.t  (** literal; dedicated registers live here *)
  | Rrs | Rrt | Rrd         (** copied from the trigger *)
  | Rparam of int           (** codeword parameter [1..3] as a register number *)

type rimm =
  | Ilit of int
  | Iimm          (** the trigger's immediate field *)
  | Ipc           (** the trigger's PC *)
  | Iparam of int (** codeword parameter [1..3], 5-bit signed *)
  | Iparam2 of int(** parameters [i] (high) and [i+1] (low), 10-bit signed *)

type rtarget =
  | Tabs of int         (** absolute address (e.g. an error handler) *)
  | Tlab of string      (** unresolved; see {!resolve_labels} *)
  | Trel_param of int   (** trigger PC + 4 * signed5(param i) *)
  | Trel_param2 of int  (** trigger PC + 4 * signed10(params i,i+1) *)

type rinsn =
  | Trigger
  | Rop of Dise_isa.Opcode.rop * rreg * rreg * rreg
  | Ropi of Dise_isa.Opcode.rop * rreg * rimm * rreg
  | Lda of rreg * rimm * rreg
  | Lui of rimm * rreg
  | Mem of Dise_isa.Opcode.mop * rreg * rimm * rreg
  | Br of Dise_isa.Opcode.bop * rreg * rtarget
  | Jmp of rtarget
  | Jal of rtarget
  | Jr of rreg
  | Jalr of rreg * rreg
  | Dbr of Dise_isa.Opcode.bop * rreg * int  (** absolute DISEPC target *)
  | Djmp of int
  | Nop
  | Halt

type t = rinsn array

exception Instantiation_error of string

val signed5 : int -> int
(** Reinterpret a 5-bit field as signed ([16..31] map to [-16..-1]). *)

val to_field5 : int -> int
(** Inverse of {!signed5}; raises {!Instantiation_error} if the value
    does not fit. *)

val signed10 : int -> int -> int
val to_fields10 : int -> int * int

val instantiate : t -> trigger:Dise_isa.Insn.t -> pc:int -> Dise_isa.Insn.t array
(** Execute the instantiation directives: combine the specification
    with the trigger's fields to produce the concrete replacement
    sequence. Raises {!Instantiation_error} when a directive refers to
    a field the trigger lacks (e.g. [T.P1] on a non-codeword). *)

val resolve_labels : (string -> int option) -> t -> t
(** Resolve [Tlab] targets against a symbol lookup (typically
    {!Dise_isa.Program.Image.symbol}). Raises {!Instantiation_error}
    on unknown labels. *)

val dedicated_used : t -> int list
(** Dedicated register numbers mentioned anywhere in the sequence. *)

val rename_dedicated : (int -> int) -> t -> t

val is_static : t -> bool
(** True when no directive depends on the trigger, i.e. the sequence
    instantiates identically for every trigger. *)

val uses_params : t -> bool
(** True when some directive reads a codeword parameter field. *)

val of_insns : Dise_isa.Insn.t list -> t
(** Lift concrete instructions into an all-literal specification.
    Raises [Invalid_argument] on codewords (recursive expansion is
    forbidden). *)

val identity : t
(** The identity expansion [T.INSN] used for negative patterns. *)

val length : t -> int
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val pp_rinsn : Format.formatter -> rinsn -> unit
