(** Pattern specifications.

    A pattern matches fetched instructions on any combination of
    opcode, opcode class, logical register names, and immediate
    attributes — exactly the menu of Section 2.1 of the paper
    ("loads that use the stack pointer as their address register",
    "conditional branches with negative offsets", ...).

    When several active patterns match one instruction, the engine
    picks the {e most specific} — the one constraining the most
    instruction bits ({!specificity}) — enabling overlapping and
    negative specifications such as "all loads that don't use the
    stack pointer" (a specific identity production shadowing a general
    one). *)

type imm_pred =
  | Imm_eq of int
  | Imm_neg
  | Imm_nonneg

type t = {
  opcode_key : int option;  (** exact opcode ({!Dise_isa.Insn.key}) *)
  opclass : Dise_isa.Opcode.cls option;
  rs : Dise_isa.Reg.t option;
  rt : Dise_isa.Reg.t option;
  rd : Dise_isa.Reg.t option;
  imm : imm_pred option;
}

val any : t
(** Matches every instruction (specificity 0). *)

val of_class : Dise_isa.Opcode.cls -> t
val of_opcode : Dise_isa.Insn.t -> t
(** Pattern matching exactly the opcode of the given example
    instruction (operands ignored). *)

val loads : t
val stores : t
val cond_branches : t
val indirect_jumps : t

val codewords : int -> t
(** Pattern matching DISE codewords built on reserved opcode [n]. *)

val with_rs : Dise_isa.Reg.t -> t -> t
val with_rt : Dise_isa.Reg.t -> t -> t
val with_rd : Dise_isa.Reg.t -> t -> t
val with_imm : imm_pred -> t -> t

val matches : t -> Dise_isa.Insn.t -> bool

val imm_matches : imm_pred -> int -> bool

val specificity : t -> int
(** Number of instruction bits the pattern constrains: opcode 6,
    opclass 4, each register name 5, immediate equality 16, immediate
    sign 1. *)

val dispatch_keys : t -> int list
(** The opcode dispatch keys this pattern can possibly match; used to
    build the per-opcode dispatch table. *)

val subsumes_key : t -> int -> bool
(** [subsumes_key p k] is true when instructions with dispatch key [k]
    can match [p] as far as the opcode/class constraint goes. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
