module I = Dise_isa.Insn
module Op = Dise_isa.Opcode
module Reg = Dise_isa.Reg
module R = Replacement

type severity =
  | Error
  | Warning

type finding = {
  severity : severity;
  production : string;
  message : string;
}

let finding severity production fmt =
  Printf.ksprintf (fun message -> { severity; production; message }) fmt

(* Which trigger fields does a sequence read? *)
type uses = {
  mutable u_rs : bool;
  mutable u_rt : bool;
  mutable u_rd : bool;
  mutable u_imm : bool;
  mutable u_params : bool;
  mutable u_trigger : bool;
}

let directive_uses (seq : R.t) =
  let u =
    { u_rs = false; u_rt = false; u_rd = false; u_imm = false;
      u_params = false; u_trigger = false }
  in
  let reg = function
    | R.Rrs -> u.u_rs <- true
    | R.Rrt -> u.u_rt <- true
    | R.Rrd -> u.u_rd <- true
    | R.Rparam _ -> u.u_params <- true
    | R.Rlit _ -> ()
  in
  let imm = function
    | R.Iimm -> u.u_imm <- true
    | R.Iparam _ | R.Iparam2 _ -> u.u_params <- true
    | R.Ilit _ | R.Ipc -> ()
  in
  let tgt = function
    | R.Trel_param _ | R.Trel_param2 _ -> u.u_params <- true
    | R.Tabs _ | R.Tlab _ -> ()
  in
  Array.iter
    (function
      | R.Trigger -> u.u_trigger <- true
      | R.Rop (_, a, b, c) -> reg a; reg b; reg c
      | R.Ropi (_, a, v, c) -> reg a; imm v; reg c
      | R.Lda (a, v, c) -> reg a; imm v; reg c
      | R.Lui (v, c) -> imm v; reg c
      | R.Mem (_, a, v, c) -> reg a; imm v; reg c
      | R.Br (_, r, t) -> reg r; tgt t
      | R.Jmp t | R.Jal t -> tgt t
      | R.Jr r -> reg r
      | R.Jalr (a, b) -> reg a; reg b
      | R.Dbr (_, r, _) -> reg r
      | R.Djmp _ | R.Nop | R.Halt -> ())
    seq;
  u

(* Dedicated registers a sequence writes. *)
let dedicated_written (seq : R.t) =
  let dest = function
    | R.Rlit (Reg.D n) -> [ n ]
    | _ -> []
  in
  Array.fold_left
    (fun acc ri ->
      let ds =
        match ri with
        | R.Rop (_, _, _, c) | R.Ropi (_, _, _, c) | R.Lda (_, _, c)
        | R.Lui (_, c) | R.Jalr (_, c) ->
          dest c
        | R.Mem ((Op.Ldq | Op.Ldbu), _, _, c) -> dest c
        | _ -> []
      in
      ds @ acc)
    [] seq
  |> List.sort_uniq compare

let has_halt (seq : R.t) = Array.exists (fun ri -> ri = R.Halt) seq

let bad_internal_control (seq : R.t) =
  let len = Array.length seq in
  Array.exists
    (function
      | R.Dbr (_, _, t) | R.Djmp t -> t < 0 || t > len
      | _ -> false)
    seq

(* Over the keys a pattern can match, does every/any example have the
   field? *)
let field_coverage pattern field =
  let keys = Pattern.dispatch_keys pattern in
  let have =
    List.filter
      (fun k ->
        let ex = I.example_of_key k in
        match field with
        | `Rs -> I.rs ex <> None
        | `Rt -> I.rt ex <> None
        | `Rd -> I.rd ex <> None
        | `Imm -> I.imm ex <> None)
      keys
  in
  match List.length have, List.length keys with
  | 0, _ -> `None
  | h, k when h = k -> `All
  | _ -> `Some

let codeword_coverage pattern =
  let keys = Pattern.dispatch_keys pattern in
  let cw =
    List.filter (fun k -> I.cls_of_key k = Op.C_codeword) keys
  in
  match List.length cw, List.length keys with
  | 0, _ -> `None
  | h, k when h = k -> `All
  | _ -> `Some

let check_sequence ~name ~pattern ~reserved ~allow_halt seq =
  let fs = ref [] in
  let add f = fs := f :: !fs in
  if Array.length seq = 0 then
    add (finding Error name "empty replacement sequence");
  if bad_internal_control seq then
    add (finding Error name "DISE-internal control leaves the sequence");
  let u = directive_uses seq in
  let check_field used field label =
    if used then
      match field_coverage pattern field with
      | `All -> ()
      | `Some ->
        add
          (finding Warning name
             "directive %s may fault: some matching triggers lack the field"
             label)
      | `None ->
        add
          (finding Error name
             "directive %s always faults: no matching trigger has the field"
             label)
  in
  check_field u.u_rs `Rs "T.RS";
  check_field u.u_rt `Rt "T.RT";
  check_field u.u_rd `Rd "T.RD";
  check_field u.u_imm `Imm "T.IMM";
  if u.u_params then begin
    match codeword_coverage pattern with
    | `All -> ()
    | `Some ->
      add
        (finding Warning name
           "parameter directives under a pattern that can match \
            non-codewords")
    | `None ->
      add
        (finding Error name
           "parameter directives but the pattern never matches codewords")
  end;
  List.iter
    (fun d ->
      if List.mem d reserved then
        add
          (finding Error name "writes reserved dedicated register $dr%d" d))
    (dedicated_written seq);
  if has_halt seq && not allow_halt then
    add (finding Warning name "replacement sequence contains halt");
  !fs

let check ?(reserved_dedicated = []) ?(allow_halt = false) set =
  let findings = ref [] in
  let add fs = findings := fs @ !findings in
  (* Per production: binding plus sequence analysis under its pattern. *)
  List.iter
    (fun (p : Production.t) ->
      let name = if p.Production.name = "" then "<anon>" else p.Production.name in
      match p.Production.rsid with
      | Production.Direct id -> (
        match Prodset.sequence set id with
        | None ->
          add [ finding Error name "names unbound sequence R%d" id ]
        | Some seq ->
          add
            (check_sequence ~name ~pattern:p.Production.pattern
               ~reserved:reserved_dedicated ~allow_halt seq))
      | Production.From_tag ->
        if Prodset.num_sequences set = 0 then
          add [ finding Warning name "tag-indexed production with no sequences" ]
        else
          List.iter
            (fun (id, seq) ->
              add
                (List.map
                   (fun f ->
                     { f with production = Printf.sprintf "%s/R%d" name id })
                   (check_sequence ~name ~pattern:p.Production.pattern
                      ~reserved:reserved_dedicated ~allow_halt seq)))
            (Prodset.sequences set))
    (Prodset.productions set);
  List.rev !findings

let errors fs = List.filter (fun f -> f.severity = Error) fs

let pp_finding ppf f =
  Format.fprintf ppf "%s [%s]: %s"
    (match f.severity with Error -> "error" | Warning -> "warning")
    f.production f.message
