module I = Dise_isa.Insn
module Op = Dise_isa.Opcode
module Reg = Dise_isa.Reg
module R = Replacement

exception Parse_error of int * string

let fail fmt = Printf.ksprintf (fun s -> raise (Parse_error (0, s))) fmt

let strip_comment line =
  let cut idx = String.sub line 0 idx in
  match String.index_opt line ';' with
  | Some i -> cut i
  | None -> (
    let rec find i =
      if i + 1 >= String.length line then None
      else if line.[i] = '/' && line.[i + 1] = '/' then Some i
      else find (i + 1)
    in
    match find 0 with Some i -> cut i | None -> line)

let split_operands s =
  String.split_on_char ',' s |> List.map String.trim
  |> List.filter (fun x -> x <> "")

let parse_number s =
  match int_of_string_opt s with Some v -> v | None -> fail "bad number %S" s

(* --- pattern conditions ------------------------------------------- *)

(* Map a mnemonic to an opcode dispatch key via an example instruction.
   Immediate ALU forms use an "i" suffix to disambiguate from the
   register form. *)
let key_of_mnemonic m =
  let r0 = Reg.zero in
  let example =
    match Op.rop_of_string m with
    | Some op -> Some (I.Rop (op, r0, r0, r0))
    | None -> (
      let n = String.length m in
      let base = if n > 1 then String.sub m 0 (n - 1) else m in
      match (if n > 1 && m.[n - 1] = 'i' then Op.rop_of_string base else None)
      with
      | Some op -> Some (I.Ropi (op, r0, 0, r0))
      | None -> (
        match Op.mop_of_string m with
        | Some op -> Some (I.Mem (op, r0, 0, r0))
        | None -> (
          match Op.bop_of_string m with
          | Some op -> Some (I.Br (op, r0, I.Abs 0))
          | None -> (
            match m with
            | "lda" -> Some (I.Lda (r0, 0, r0))
            | "lui" -> Some (I.Lui (0, r0))
            | "jmp" -> Some (I.Jmp (I.Abs 0))
            | "jal" -> Some (I.Jal (I.Abs 0))
            | "jr" -> Some (I.Jr r0)
            | "jalr" -> Some (I.Jalr (r0, r0))
            | "djmp" -> Some (I.Djmp 0)
            | "nop" -> Some I.Nop
            | "halt" -> Some I.Halt
            | _ when String.length m > 1 && m.[0] = 'd'
                     && Op.bop_of_string (String.sub m 1 (String.length m - 1))
                        <> None -> (
              match Op.bop_of_string (String.sub m 1 (String.length m - 1)) with
              | Some op -> Some (I.Dbr (op, r0, 0))
              | None -> None)
            | _ ->
              if String.length m = 3 && String.sub m 0 2 = "cw" then
                let n = Char.code m.[2] - Char.code '0' in
                if n >= 0 && n < Op.num_reserved then
                  Some (I.codeword ~op:n ~p1:0 ~p2:0 ~p3:0 ~tag:0)
                else None
              else None))))
  in
  match example with
  | Some i -> I.key i
  | None -> fail "unknown mnemonic %S in T.OP condition" m

let split_on_substring sep s =
  let seplen = String.length sep in
  let rec go start acc =
    let rec find i =
      if i + seplen > String.length s then None
      else if String.sub s i seplen = sep then Some i
      else find (i + 1)
    in
    match find start with
    | Some i -> go (i + seplen) (String.sub s start (i - start) :: acc)
    | None -> List.rev (String.sub s start (String.length s - start) :: acc)
  in
  go 0 []

let parse_condition pat cond =
  let cond = String.trim cond in
  let with_op op k =
    match split_on_substring op cond with
    | [ lhs; rhs ] -> Some (String.trim lhs, k, String.trim rhs)
    | _ -> None
  in
  (* Try >= before == and <. *)
  let parts =
    match with_op ">=" `Ge with
    | Some p -> p
    | None -> (
      match with_op "==" `Eq with
      | Some p -> p
      | None -> (
        match with_op "<" `Lt with
        | Some p -> p
        | None -> fail "bad condition %S" cond))
  in
  match parts with
  | "T.OPCLASS", `Eq, cls -> (
    match Op.cls_of_string cls with
    | Some c -> { pat with Pattern.opclass = Some c }
    | None -> fail "unknown opcode class %S" cls)
  | "T.OP", `Eq, m -> { pat with Pattern.opcode_key = Some (key_of_mnemonic m) }
  | "T.RS", `Eq, r -> (
    match Reg.of_string r with
    | Some r -> { pat with Pattern.rs = Some r }
    | None -> fail "bad register %S" r)
  | "T.RT", `Eq, r -> (
    match Reg.of_string r with
    | Some r -> { pat with Pattern.rt = Some r }
    | None -> fail "bad register %S" r)
  | "T.RD", `Eq, r -> (
    match Reg.of_string r with
    | Some r -> { pat with Pattern.rd = Some r }
    | None -> fail "bad register %S" r)
  | "T.IMM", `Eq, v ->
    { pat with Pattern.imm = Some (Pattern.Imm_eq (parse_number v)) }
  | "T.IMM", `Lt, "0" -> { pat with Pattern.imm = Some Pattern.Imm_neg }
  | "T.IMM", `Ge, "0" -> { pat with Pattern.imm = Some Pattern.Imm_nonneg }
  | lhs, _, _ -> fail "unsupported condition on %S" lhs

let parse_pattern s =
  let conds = split_on_substring "&&" s in
  List.fold_left parse_condition Pattern.any conds

(* --- replacement operands ------------------------------------------ *)

let parse_rreg s =
  match s with
  | "T.RS" -> R.Rrs
  | "T.RT" -> R.Rrt
  | "T.RD" -> R.Rrd
  | "T.P1" -> R.Rparam 1
  | "T.P2" -> R.Rparam 2
  | "T.P3" -> R.Rparam 3
  | _ -> (
    match Reg.of_string s with
    | Some r -> R.Rlit r
    | None -> fail "bad register operand %S" s)

let parse_rimm s =
  if String.length s = 0 || s.[0] <> '#' then
    fail "expected #immediate, got %S" s
  else
    match String.sub s 1 (String.length s - 1) with
    | "T.IMM" -> R.Iimm
    | "T.PC" -> R.Ipc
    | "T.P1" -> R.Iparam 1
    | "T.P2" -> R.Iparam 2
    | "T.P3" -> R.Iparam 3
    | "T.P1P2" -> R.Iparam2 1
    | "T.P2P3" -> R.Iparam2 2
    | v -> R.Ilit (parse_number v)

let is_ident_char c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
  || c = '_' || c = '.'

let parse_rtarget s =
  match s with
  | "T.PC+T.P1" -> R.Trel_param 1
  | "T.PC+T.P2" -> R.Trel_param 2
  | "T.PC+T.P3" -> R.Trel_param 3
  | "T.PC+T.P1P2" -> R.Trel_param2 1
  | "T.PC+T.P2P3" -> R.Trel_param2 2
  | _ ->
    if String.length s > 1 && s.[0] = '0' && (s.[1] = 'x' || s.[1] = 'X') then
      R.Tabs (parse_number s)
    else if String.length s > 0 && String.for_all is_ident_char s then
      R.Tlab s
    else fail "bad target %S" s

(* "imm(reg)" where imm may itself be a #-less literal or directive *)
let parse_rmem_operand s =
  match String.index_opt s '(' with
  | None -> fail "expected imm(reg), got %S" s
  | Some i ->
    if s.[String.length s - 1] <> ')' then fail "expected imm(reg), got %S" s
    else
      let imm_str = String.trim (String.sub s 0 i) in
      let reg_str = String.trim (String.sub s (i + 1) (String.length s - i - 2)) in
      let imm =
        if imm_str = "" then R.Ilit 0
        else if imm_str.[0] = '#' then parse_rimm imm_str
        else parse_rimm ("#" ^ imm_str)
      in
      (imm, parse_rreg reg_str)

let parse_disepc s =
  if String.length s > 1 && s.[0] = '@' then
    parse_number (String.sub s 1 (String.length s - 1))
  else fail "expected @disepc, got %S" s

let parse_rinsn line =
  let line = String.trim line in
  if line = "T.INSN" then R.Trigger
  else
    let mnemonic, rest =
      match String.index_opt line ' ' with
      | None -> (line, "")
      | Some i ->
        (String.sub line 0 i, String.sub line (i + 1) (String.length line - i - 1))
    in
    let mnemonic = String.lowercase_ascii mnemonic in
    let ops = split_operands rest in
    let is_reg_operand s =
      String.length s > 0 && s.[0] <> '#'
      && not (String.contains s '(')
    in
    match Op.rop_of_string mnemonic with
    | Some op -> (
      match ops with
      | [ a; b; c ] ->
        let rs = parse_rreg a and rd = parse_rreg c in
        if is_reg_operand b then R.Rop (op, rs, parse_rreg b, rd)
        else R.Ropi (op, rs, parse_rimm b, rd)
      | _ -> fail "%s expects 3 operands" mnemonic)
    | None -> (
      match Op.mop_of_string mnemonic with
      | Some op -> (
        match ops with
        | [ data; memop ] ->
          let off, base = parse_rmem_operand memop in
          R.Mem (op, base, off, parse_rreg data)
        | _ -> fail "%s expects 2 operands" mnemonic)
      | None -> (
        match Op.bop_of_string mnemonic with
        | Some op -> (
          match ops with
          | [ r; t ] -> R.Br (op, parse_rreg r, parse_rtarget t)
          | _ -> fail "%s expects 2 operands" mnemonic)
        | None -> (
          match mnemonic, ops with
          | "lda", [ rd; memop ] ->
            let off, base = parse_rmem_operand memop in
            R.Lda (base, off, parse_rreg rd)
          | "lui", [ imm; rd ] -> R.Lui (parse_rimm imm, parse_rreg rd)
          | "jmp", [ t ] -> R.Jmp (parse_rtarget t)
          | "jal", [ t ] -> R.Jal (parse_rtarget t)
          | "jr", [ r ] -> R.Jr (parse_rreg r)
          | "jalr", [ rs; rd ] -> R.Jalr (parse_rreg rs, parse_rreg rd)
          | "djmp", [ t ] -> R.Djmp (parse_disepc t)
          | "nop", [] -> R.Nop
          | "halt", [] -> R.Halt
          | _ when String.length mnemonic > 1 && mnemonic.[0] = 'd' -> (
            let inner = String.sub mnemonic 1 (String.length mnemonic - 1) in
            match Op.bop_of_string inner, ops with
            | Some op, [ r; t ] -> R.Dbr (op, parse_rreg r, parse_disepc t)
            | _, _ -> fail "unknown mnemonic %S" mnemonic)
          | _ -> fail "unknown replacement mnemonic %S" mnemonic)))

(* --- whole-source parsing ------------------------------------------ *)

type header =
  | Hprod of string * string  (* name, body *)
  | Hseq of int * string      (* sequence id, trailing first insn or "" *)
  | Hnone of string           (* continuation line *)

let classify line =
  match String.index_opt line ':' with
  | None -> Hnone line
  | Some i ->
    let name = String.trim (String.sub line 0 i) in
    let rest = String.trim (String.sub line (i + 1) (String.length line - i - 1)) in
    if name = "" || not (String.for_all is_ident_char name) then Hnone line
    else if
      (* A production header has "->" in its body. *)
      List.length (split_on_substring "->" rest) = 2
    then Hprod (name, rest)
    else if String.length name > 1 && name.[0] = 'R' then
      match int_of_string_opt (String.sub name 1 (String.length name - 1)) with
      | Some id -> Hseq (id, rest)
      | None -> Hnone line
    else Hnone line

let parse source =
  let lines = String.split_on_char '\n' source in
  let prodset = ref Prodset.empty in
  let cur_seq : (int * R.rinsn list ref) option ref = ref None in
  let flush () =
    match !cur_seq with
    | Some (id, insns) ->
      prodset :=
        Prodset.define_sequence !prodset id (Array.of_list (List.rev !insns));
      cur_seq := None
    | None -> ()
  in
  let handle lineno raw =
    let line = String.trim (strip_comment raw) in
    if line = "" then ()
    else
      match classify line with
      | Hprod (name, body) -> (
        flush ();
        match split_on_substring "->" body with
        | [ lhs; rhs ] -> (
          let pattern = parse_pattern lhs in
          let rhs = String.trim rhs in
          let rsid =
            if rhs = "TAG" then Production.From_tag
            else if String.length rhs > 1 && rhs.[0] = 'R' then
              match
                int_of_string_opt (String.sub rhs 1 (String.length rhs - 1))
              with
              | Some id -> Production.Direct id
              | None -> fail "bad sequence name %S" rhs
            else fail "bad sequence name %S" rhs
          in
          prodset :=
            Prodset.add_production !prodset (Production.make ~name pattern rsid))
        | _ -> fail "bad production line %d" lineno)
      | Hseq (id, first) ->
        flush ();
        let insns = ref [] in
        if first <> "" then insns := [ parse_rinsn first ];
        cur_seq := Some (id, insns)
      | Hnone body -> (
        match !cur_seq with
        | Some (_, insns) -> insns := parse_rinsn body :: !insns
        | None -> fail "instruction outside a replacement block: %S" body)
  in
  List.iteri
    (fun idx raw ->
      try handle (idx + 1) raw
      with Parse_error (0, msg) -> raise (Parse_error (idx + 1, msg)))
    lines;
  flush ();
  !prodset

let production_to_string p = Format.asprintf "%a" Production.pp p

let sequence_to_string (id, seq) =
  let buf = Buffer.create 128 in
  Buffer.add_string buf (Printf.sprintf "R%d:" id);
  Array.iteri
    (fun i r ->
      Buffer.add_string buf (if i = 0 then " " else "\n    ");
      Buffer.add_string buf (Format.asprintf "%a" R.pp_rinsn r))
    seq;
  Buffer.contents buf

let to_string set =
  let b = Buffer.create 512 in
  List.iter
    (fun p ->
      Buffer.add_string b (production_to_string p);
      Buffer.add_char b '\n')
    (Prodset.productions set);
  List.iter
    (fun sq ->
      Buffer.add_string b (sequence_to_string sq);
      Buffer.add_char b '\n')
    (Prodset.sequences set);
  Buffer.contents b

let parse_result ?(source = "<productions>") text =
  match parse text with
  | set -> Ok set
  | exception Parse_error (line, msg) ->
    Error (Dise_isa.Diag.Parse { source; line; msg })
