(** Pattern table occupancy model with the paper's pattern-counter
    virtualization.

    The PT is a small fully-associative structure holding the
    {e resident} patterns; the full (virtual) production set lives in
    memory. Because a missing pattern is indistinguishable from a
    non-match, misses are detected through a {e pattern counter table}:
    a per-opcode count of active patterns compared against a per-opcode
    count of resident patterns. A fetched instance of an opcode whose
    counters differ triggers a PT miss and a fill of {e all} patterns
    for that opcode (evicting least-recently-used opcodes' patterns as
    needed).

    This module models occupancy and miss events only; matching is the
    engine's job. *)

type t

val create : capacity:int -> Prodset.t -> t
(** [capacity] in pattern entries (the paper's default is 32). *)

val access : t -> key:int -> [ `Hit | `Miss of int ]
(** Record a fetch of an instruction with the given opcode dispatch
    key. [`Miss n] means the pattern-counter table flagged a miss and
    [n] patterns were (re)loaded. Opcodes with no active patterns
    always hit (counters agree at zero). *)

val invalidate : t -> unit
(** Drop residency (context switch): the pattern counter table is
    architectural and survives, so subsequent fetches of active opcodes
    fault their patterns back in. *)

val resident_patterns : t -> int
val accesses : t -> int
val misses : t -> int
val active_patterns : t -> int
(** Total active patterns in the virtual set. *)
