type rsid_spec =
  | Direct of int
  | From_tag

type t = {
  name : string;
  pattern : Pattern.t;
  rsid : rsid_spec;
  priority : int;
}

let make ?(name = "") ?(priority = 0) pattern rsid =
  { name; pattern; rsid; priority }

let rsid_of t trigger =
  match t.rsid with
  | Direct id -> id
  | From_tag -> (
    match trigger with
    | Dise_isa.Insn.Codeword { tag; _ } -> tag
    | _ -> invalid_arg "Production.rsid_of: tagged production on non-codeword")

let compare_precedence a b =
  match compare b.priority a.priority with
  | 0 -> (
    match
      compare (Pattern.specificity b.pattern) (Pattern.specificity a.pattern)
    with
    | 0 -> compare a.name b.name
    | c -> c)
  | c -> c

let pp ppf t =
  let rsid =
    match t.rsid with
    | Direct id -> Printf.sprintf "R%d" id
    | From_tag -> "R[T.TAG]"
  in
  Format.fprintf ppf "%s: %a -> %s"
    (if t.name = "" then "P" else t.name)
    Pattern.pp t.pattern rsid
