(** OS-kernel virtualization of DISE state (Section 2.3).

    The kernel makes the production facility multiprogramming-
    transparent and safe:

    - {e per-process production sets}: a process's user ACF operates on
      that process only; it is deactivated when the process is switched
      out. Kernel-installed (inspected and approved) ACFs apply to
      every process.
    - {e save/restore}: the dedicated registers are hardware state;
      the kernel saves them on switch-out and restores them on
      switch-in. The PT/RT are demand-loaded caches: a switch merely
      invalidates residency (via {!Controller.context_switch}) and the
      controller faults entries back in.
    - {e inspection}: user production sets are admitted only if
      {!Safety.check} reports no errors against the kernel's reserved
      dedicated registers.

    The scheduler here is a minimal round-robin over processes, enough
    to observe isolation and switch costs; it is a modelling substrate,
    not an OS. *)

type pid = int

type t

exception Rejected of Safety.finding list
(** A submitted production set failed inspection. *)

val create :
  ?controller_cfg:Controller.config ->
  ?reserved_dedicated:int list ->
  unit ->
  t
(** [reserved_dedicated] (default [[2; 3]], the fault-isolation segment
    registers) are writable only by kernel ACFs. *)

val install_kernel_acf :
  t -> name:string -> ?regs:(int * int) list -> Prodset.t -> unit
(** Install a system-wide (transparent) ACF. Applied to every process
    (current and future). [regs] are dedicated-register initializations
    the ACF needs (e.g. the fault-isolation segment ids), applied to
    every process's saved register set. Raises {!Rejected} on safety
    errors (reserved-register writes are permitted: the kernel owns
    them). *)

val spawn :
  t ->
  name:string ->
  ?acf:Prodset.t ->
  ?dise_regs:(int * int) list ->
  Dise_isa.Program.Image.t ->
  pid
(** Create a process from an image, with an optional user ACF
    (inspected; raises {!Rejected} on errors) and initial dedicated-
    register values (e.g. trace buffer pointers). *)

val machine : t -> pid -> Dise_machine.Machine.t

val switch_to : t -> pid -> unit
(** Save the current process's dedicated registers and DISEPC, restore
    the target's, deactivate/activate user production sets, and
    invalidate PT/RT residency. *)

val run_slice : t -> pid -> steps:int -> [ `Ran of int | `Halted ]
(** Switch to the process and execute up to [steps] dynamic
    instructions. *)

val round_robin : ?slice:int -> ?max_slices:int -> t -> unit
(** Run all live processes to completion, [slice] (default 10_000)
    instructions at a time. Raises [Failure] if [max_slices] (default
    10_000) elapse first. *)

val switches : t -> int
val controller : t -> Controller.t
val live : t -> pid list
