module I = Dise_isa.Insn
module Image = Dise_isa.Program.Image
module Machine = Dise_machine.Machine

exception Expansion_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Expansion_error s)) fmt

(* Expansion memo for a dense image: one slot per static instruction,
   indexed by (pc - base) / 4, so the per-fetch lookup is a few array
   reads instead of a hashtable probe. [known] marks computed slots;
   [slots] stores the shared option, so cache hits allocate nothing.
   [triggers] remembers the instruction each slot was computed for:
   PC alone is not a sound key — an image can be re-laid-out (or a
   direct caller can probe with a different instruction) so that the
   same address carries a different trigger, and a PC-only memo would
   return the stale expansion. A hit therefore requires the trigger to
   match (physical equality first: the machine feeds back the very
   predecoded instruction, so the structural comparison almost never
   runs). *)
type dense = {
  dense_base : int;
  known : Bytes.t;
  triggers : I.t array;
  slots : Machine.expansion option array;
}

type t = {
  mutable prodset : Prodset.t;
  mutable dispatch : Production.t list array;
      (* by opcode key, precedence order *)
  dense : dense option;
  cache : (int, I.t * Machine.expansion option) Hashtbl.t;
      (* Sparse fallback, keyed by PC with the memoized trigger stored
         alongside the result — the same staleness discipline as the
         dense memo: a hit requires the stored trigger to match the
         probe (physical equality first), because a re-laid-out image
         can put a different instruction at the same address. Keying
         by the bare int also avoids allocating a (pc, insn) tuple and
         deep-hashing the instruction on every probe. *)
  generation : int ref;
      (* Bumped by [set_prodset] and [invalidate]; machines attached
         via [attach_jit] share this ref and retire their superblocks
         when it moves. *)
  mutable jit : Machine.jit_state option;
      (* Superblock state warmed by previously attached machines.
         [attach_jit] re-adopts it so traces compiled while serving
         one machine keep paying off for every later machine over the
         same image — compilation is per engine, not per machine. *)
  mutable performed : int;
}

let build_dispatch prodset =
  Array.init I.num_keys (fun key -> Prodset.patterns_for_key prodset key)

let create ?image prodset =
  let dense =
    match image with
    | Some img when Image.is_dense img ->
      let n = Image.length img in
      Some
        {
          dense_base = Image.base img;
          known = Bytes.make n '\000';
          triggers = Array.make n I.Halt;
          slots = Array.make n None;
        }
    | Some _ | None -> None
  in
  {
    prodset;
    dispatch = build_dispatch prodset;
    dense;
    cache = Hashtbl.create 4096;
    generation = ref 0;
    jit = None;
    performed = 0;
  }

let prodset t = t.prodset
let generation t = !(t.generation)

let clear_memos t =
  (match t.dense with
  | Some d ->
    Bytes.fill d.known 0 (Bytes.length d.known) '\000';
    Array.fill d.slots 0 (Array.length d.slots) None
  | None -> ());
  Hashtbl.reset t.cache

let invalidate t =
  clear_memos t;
  incr t.generation

let set_prodset t prodset =
  t.prodset <- prodset;
  t.dispatch <- build_dispatch prodset;
  invalidate t

let attach_jit ?threshold t m =
  let adopted =
    match t.jit with Some js -> Machine.adopt_jit m js | None -> false
  in
  if not adopted then begin
    Machine.enable_jit ?threshold ~generation:t.generation m;
    t.jit <- Machine.jit_state m
  end

let compute t ~pc insn =
  let rec first = function
    | [] -> None
    | p :: rest ->
      if Pattern.matches p.Production.pattern insn then Some p else first rest
  in
  match first t.dispatch.(I.key insn) with
  | None -> None
  | Some p -> (
    let rsid = Production.rsid_of p insn in
    match Prodset.sequence t.prodset rsid with
    | None ->
      fail "production %s names unbound sequence R%d"
        (if p.Production.name = "" then "<anon>" else p.Production.name)
        rsid
    | Some spec -> (
      match Replacement.instantiate spec ~trigger:insn ~pc with
      | seq -> Some { Machine.rsid; seq }
      | exception Replacement.Instantiation_error msg ->
        fail "instantiating R%d for trigger at 0x%x: %s" rsid pc msg))

let sparse_lookup t ~pc insn =
  match Hashtbl.find_opt t.cache pc with
  | Some (t0, r) when t0 == insn || I.equal t0 insn -> r
  | Some _ | None ->
    let r = compute t ~pc insn in
    Hashtbl.replace t.cache pc (insn, r);
    r

let expand t ~pc insn =
  let result =
    match t.dense with
    | Some d ->
      let off = pc - d.dense_base in
      let idx = off lsr 2 in
      if off >= 0 && off land 3 = 0 && idx < Array.length d.slots then begin
        if
          Bytes.unsafe_get d.known idx = '\001'
          && (let t0 = Array.unsafe_get d.triggers idx in
              t0 == insn || I.equal t0 insn)
        then Array.unsafe_get d.slots idx
        else begin
          let r = compute t ~pc insn in
          d.slots.(idx) <- r;
          d.triggers.(idx) <- insn;
          Bytes.set d.known idx '\001';
          r
        end
      end
      else
        (* Off-image PC (e.g. a hand-built machine probing the engine
           directly): fall back to the sparse memo. *)
        sparse_lookup t ~pc insn
    | None -> sparse_lookup t ~pc insn
  in
  (match result with Some _ -> t.performed <- t.performed + 1 | None -> ());
  result

let expand_result t ~pc insn =
  match expand t ~pc insn with
  | r -> Ok r
  | exception Expansion_error msg -> Error (Dise_isa.Diag.Expansion msg)

let expander t ~pc insn = expand t ~pc insn
let expansions_performed t = t.performed

let distinct_triggers t =
  let sparse =
    Hashtbl.fold
      (fun _ (_, v) acc -> match v with Some _ -> acc + 1 | None -> acc)
      t.cache 0
  in
  match t.dense with
  | None -> sparse
  | Some d ->
    Array.fold_left
      (fun acc v -> match v with Some _ -> acc + 1 | None -> acc)
      sparse d.slots
