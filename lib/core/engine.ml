module I = Dise_isa.Insn
module Machine = Dise_machine.Machine

exception Expansion_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Expansion_error s)) fmt

type t = {
  prodset : Prodset.t;
  dispatch : Production.t list array;  (* by opcode key, precedence order *)
  cache : (int, Machine.expansion option) Hashtbl.t;  (* by trigger PC *)
  mutable performed : int;
}

let create prodset =
  let dispatch =
    Array.init I.num_keys (fun key -> Prodset.patterns_for_key prodset key)
  in
  { prodset; dispatch; cache = Hashtbl.create 4096; performed = 0 }

let prodset t = t.prodset

let compute t ~pc insn =
  let rec first = function
    | [] -> None
    | p :: rest ->
      if Pattern.matches p.Production.pattern insn then Some p else first rest
  in
  match first t.dispatch.(I.key insn) with
  | None -> None
  | Some p -> (
    let rsid = Production.rsid_of p insn in
    match Prodset.sequence t.prodset rsid with
    | None ->
      fail "production %s names unbound sequence R%d"
        (if p.Production.name = "" then "<anon>" else p.Production.name)
        rsid
    | Some spec -> (
      match Replacement.instantiate spec ~trigger:insn ~pc with
      | seq -> Some { Machine.rsid; seq }
      | exception Replacement.Instantiation_error msg ->
        fail "instantiating R%d for trigger at 0x%x: %s" rsid pc msg))

let expand t ~pc insn =
  let result =
    match Hashtbl.find_opt t.cache pc with
    | Some r -> r
    | None ->
      let r = compute t ~pc insn in
      Hashtbl.replace t.cache pc r;
      r
  in
  (match result with Some _ -> t.performed <- t.performed + 1 | None -> ());
  result

let expander t ~pc insn = expand t ~pc insn
let expansions_performed t = t.performed
let distinct_triggers t =
  Hashtbl.fold (fun _ v acc -> match v with Some _ -> acc + 1 | None -> acc)
    t.cache 0
