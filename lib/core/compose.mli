(** ACF composition (Section 3.3).

    Composition is performed in software over production sets, not by
    the hardware. {e Nested} composition X-within-Y — the final stream
    equals [Y(X(application))] — is built as: Y's productions, plus X's
    productions with Y "executed" over their replacement sequences
    ({!inline_seq}, the paper's replacement-sequence inlining).
    {e Non-nested} composition merges the replacement sequences of
    overlapping patterns while keeping a single trigger instance
    ({!merge_sequences}, Figure 5's R4).

    Inlining must decide statically whether an outer pattern matches a
    replacement-sequence {e template}. Templates with parameterized
    fields make some decisions impossible; such ambiguity raises
    {!Composition_error} rather than silently guessing (the paper's
    composition is likewise an offline software step that may fail). *)

exception Composition_error of string

val inline_seq :
  outer:Prodset.t ->
  ?trigger_pattern:Pattern.t ->
  Replacement.t ->
  Replacement.t
(** Apply the [outer] production set to every instruction of a
    replacement sequence specification. [trigger_pattern] describes
    what the sequence's own trigger can be; it is required to decide
    matches against [Trigger] ([T.INSN]) elements. DISE-internal
    branch offsets are remapped to the inlined layout. Raises
    {!Composition_error} on ambiguity. *)

val nest : outer:Prodset.t -> inner:Prodset.t -> Prodset.t
(** Nested composition: the returned set produces
    [outer(inner(stream))]. Inner productions keep their patterns but
    get inlined sequences and elevated priority (the inner ACF applied
    first must win when both match a fetched instruction). Sequence-id
    spaces must be disjoint; inner [From_tag] sequences keep their ids
    (tags are already planted in the binary), inner [Direct] sequences
    whose inlining changed them are re-bound to fresh ids. Dedicated
    register conflicts between inner and outer are resolved by
    renaming the {e inner} sequence's registers into fresh ones
    (documented restriction: externally initialized dedicated
    registers of the two ACFs should be disjoint, as in the paper's
    examples). *)

val merge_sequences : Replacement.t -> Replacement.t -> Replacement.t
(** Non-nested merge of two sequences for overlapping patterns: the
    first sequence minus its trailing [Trigger], followed by the
    second (which must contain the trigger). Raises
    {!Composition_error} if the first sequence's trigger is not last,
    if either contains DISE-internal control that would change meaning
    under concatenation, or if the first has no trigger. *)

val shift_direct_rsids : int -> Prodset.t -> Prodset.t
(** Re-number all [Direct] sequence ids by adding an offset, to
    establish disjoint id spaces before composing. Raises
    {!Composition_error} if the set contains [From_tag] productions
    whose tag space would be broken by shifting shared sequences. *)
