(** Static safety analysis of production sets.

    The paper's system architecture routes user ACFs through the OS
    kernel for "inspection and approval" before they may touch other
    processes, and lists safety-analysis tooling as future work; this
    module implements the analyzable core. Productions are declarative
    rules over a closed instruction language, so several useful
    properties are decidable:

    - every [Direct] production's sequence id is bound, and every
      bound sequence is non-empty;
    - DISE-internal control stays inside its sequence;
    - parameter directives ([T.P1]..) appear only under patterns that
      can only match codewords;
    - trigger-field directives ([T.RS], [T.IMM], ...) are not used
      under patterns that can only match instructions lacking the
      field;
    - reserved dedicated registers (e.g. the kernel fault-isolation
      ACF's segment registers) are not written;
    - (policy) [halt] inside a replacement sequence is flagged.

    Field-directive checking is conservative: a use that {e may} fault
    at runtime (pattern admits both field-bearing and field-free
    triggers) is a warning, a use that {e must} fault is an error. *)

type severity =
  | Error    (** will fault or misbehave at runtime *)
  | Warning  (** may fault, or violates policy *)

type finding = {
  severity : severity;
  production : string;  (** name, or "R<id>" for sequence-level findings *)
  message : string;
}

val check :
  ?reserved_dedicated:int list ->
  ?allow_halt:bool ->
  Prodset.t ->
  finding list
(** Analyze a production set. An empty result means approved. *)

val errors : finding list -> finding list
val pp_finding : Format.formatter -> finding -> unit
