(** A production set: the active productions plus the replacement
    sequence store they reference.

    This is the software-visible unit the OS kernel virtualizes —
    what gets composed, swapped on context switch, and demand-loaded
    into the PT/RT. Lookup implements the engine's matching rule:
    among all matching productions, the highest-precedence
    (priority, then specificity) wins. *)

type t

val empty : t

val add_production : t -> Production.t -> t

val remove_production : t -> string -> t
(** Drop all productions with the given name (sequences stay bound; an
    ACF can be reactivated by re-adding its productions). The paper's
    assertions story depends on this being cheap: inactive assertions
    have no runtime cost once their productions are removed. *)

val define_sequence : t -> int -> Replacement.t -> t
(** Bind a replacement sequence id. Rebinding an id replaces it. *)

val add : t -> Production.t -> Replacement.t -> t
(** Convenience: define the production's [Direct] sequence and add the
    production. Raises [Invalid_argument] for [From_tag] productions
    (their sequences must be defined per tag). *)

val union : t -> t -> t
(** Left-biased on sequence-id collisions; raises [Invalid_argument]
    if both sides bind the same id to different sequences. *)

val productions : t -> Production.t list
val sequence : t -> int -> Replacement.t option
val sequences : t -> (int * Replacement.t) list
val num_productions : t -> int
val num_sequences : t -> int

val max_rsid : t -> int
(** Largest bound sequence id, or -1 when none. *)

val lookup : t -> Dise_isa.Insn.t -> (Production.t * int) option
(** Match an instruction: winning production and resolved replacement
    sequence id. *)

val patterns_for_key : t -> int -> Production.t list
(** Productions whose pattern can match the given opcode dispatch key,
    in precedence order; this is what a PT fill for that opcode
    loads. *)

val resolve_labels : (string -> int option) -> t -> t
(** Resolve symbolic targets in every replacement sequence. *)

val rename_dedicated : (int -> int) -> t -> t

(** {1 Capacity accounting}

    What a production set costs in PT/RT space, in the units the
    controller's structures are sized in: one PT entry per production
    (each production is one resident pattern), and one RT block per
    [ceil(len / entries_per_block)] chunk of each bound replacement
    sequence (Section 2.2's coalescing). [disesim synthesize] uses
    this to reject candidate dictionaries that could never be resident
    — a set that overflows the PT or RT thrashes on every context of
    use, so capacity is a hard search constraint, not a preference. *)

type footprint = {
  pt_patterns : int;  (** PT entries the set needs resident *)
  rt_blocks : int;    (** RT blocks over all bound sequences *)
  rt_entries : int;   (** [rt_blocks * entries_per_block] *)
}

val footprint : ?entries_per_block:int -> t -> footprint
(** Default [entries_per_block] is 1 (one RT entry per replacement
    instruction), matching {!Controller.default_config}. *)

val fits : ?entries_per_block:int -> pt_entries:int -> rt_entries:int -> t -> bool
(** Whole-set residency: every pattern fits the PT and every sequence
    block fits the RT at once. *)

val pp : Format.formatter -> t -> unit
