module IntMap = Map.Make (Int)

type t = {
  prods : Production.t list;  (* in precedence order *)
  seqs : Replacement.t IntMap.t;
}

let empty = { prods = []; seqs = IntMap.empty }

let add_production t p =
  { t with prods = List.stable_sort Production.compare_precedence (p :: t.prods) }

let remove_production t name =
  { t with
    prods = List.filter (fun p -> p.Production.name <> name) t.prods }

let define_sequence t id seq = { t with seqs = IntMap.add id seq t.seqs }

let add t p seq =
  match p.Production.rsid with
  | Production.Direct id -> add_production (define_sequence t id seq) p
  | Production.From_tag ->
    invalid_arg "Prodset.add: From_tag production needs per-tag sequences"

let union a b =
  let seqs =
    IntMap.union
      (fun id sa sb ->
        if Replacement.equal sa sb then Some sa
        else
          invalid_arg
            (Printf.sprintf "Prodset.union: conflicting sequence R%d" id))
      a.seqs b.seqs
  in
  {
    prods = List.stable_sort Production.compare_precedence (a.prods @ b.prods);
    seqs;
  }

let productions t = t.prods
let sequence t id = IntMap.find_opt id t.seqs
let sequences t = IntMap.bindings t.seqs
let num_productions t = List.length t.prods
let num_sequences t = IntMap.cardinal t.seqs

let max_rsid t =
  match IntMap.max_binding_opt t.seqs with
  | Some (id, _) -> id
  | None -> -1

let lookup t insn =
  let rec go = function
    | [] -> None
    | p :: rest ->
      if Pattern.matches p.Production.pattern insn then
        Some (p, Production.rsid_of p insn)
      else go rest
  in
  go t.prods

let patterns_for_key t key =
  List.filter (fun p -> Pattern.subsumes_key p.Production.pattern key) t.prods

let resolve_labels lookup_sym t =
  { t with seqs = IntMap.map (Replacement.resolve_labels lookup_sym) t.seqs }

let rename_dedicated f t =
  { t with seqs = IntMap.map (Replacement.rename_dedicated f) t.seqs }

type footprint = {
  pt_patterns : int;
  rt_blocks : int;
  rt_entries : int;
}

let footprint ?(entries_per_block = 1) t =
  let epb = max 1 entries_per_block in
  let rt_blocks =
    IntMap.fold
      (fun _ seq acc -> acc + ((Array.length seq + epb - 1) / epb))
      t.seqs 0
  in
  {
    pt_patterns = List.length t.prods;
    rt_blocks;
    rt_entries = rt_blocks * epb;
  }

let fits ?entries_per_block ~pt_entries ~rt_entries t =
  let epb = match entries_per_block with Some e -> max 1 e | None -> 1 in
  let f = footprint ~entries_per_block:epb t in
  f.pt_patterns <= pt_entries && f.rt_blocks * epb <= rt_entries

let pp ppf t =
  List.iter (fun p -> Format.fprintf ppf "%a@." Production.pp p) t.prods;
  IntMap.iter
    (fun id seq -> Format.fprintf ppf "R%d:@.%a@." id Replacement.pp seq)
    t.seqs
