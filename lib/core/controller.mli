(** The DISE controller: interface between the engine's PT/RT and the
    rest of the system.

    The controller virtualizes the PT and RT — treating them as caches
    over the in-memory production set — and services their misses the
    way the paper costs them: a pipeline flush plus a fixed stall
    (30 cycles for a simple fill; 150 cycles when the fill must first
    run replacement-sequence {e composition}, as in the
    decompression+fault-isolation RT-miss handler of Section 3.3).

    The timing model calls {!on_fetch} for every application fetch and
    {!on_expansion} for every expansion start and adds the returned
    stall cycles. *)

type config = {
  pt_entries : int;       (** 32 in the paper's default *)
  pt_perfect : bool;
  rt_entries : int;       (** 2048 in the paper's default *)
  rt_assoc : int;
  rt_entries_per_block : int;
      (** replacement-instruction coalescing factor (Section 2.2): a
          block holds this many sequential RT entries, trading read
          ports for internal fragmentation *)
  rt_perfect : bool;
  miss_penalty : int;     (** simple PT/RT miss stall, 30 *)
  compose_penalty : int;  (** composing RT miss stall, 150 *)
  composing : bool;       (** RT fills run the composition routine *)
}

val default_config : config
(** The paper's default: 32-entry PT, 2K-entry 2-way RT, 30/150 cycle
    stalls, no composition. *)

val perfect_config : config
(** Perfect PT and RT: DISE is free. *)

type t

val create : config -> Prodset.t -> t

val config : t -> config

val on_fetch : t -> key:int -> int
(** Stall cycles charged at fetch of an instruction with the given
    opcode key (non-zero only on a PT miss). *)

val on_expansion : t -> rsid:int -> len:int -> int
(** Stall cycles charged when an expansion of [len] instructions
    begins (non-zero only on an RT miss). *)

val context_switch : t -> unit
(** Invalidate PT and RT residency (the pattern counter table is
    saved/restored as architectural state, so both structures fault
    their contents back in on demand after the switch). *)

type stats = {
  pt_accesses : int;
  pt_misses : int;
  rt_accesses : int;
  rt_misses : int;
  stall_cycles : int;
}

val stats : t -> stats
