(** Productions: pattern → replacement-sequence binding.

    Transparent productions carry the replacement sequence identifier
    directly ([Direct]); aware productions extract it from the
    trigger's explicit tag field ([From_tag]), letting a single
    reserved-opcode pattern name up to 2048 distinct replacement
    sequences.

    [priority] layers production sets: composition installs composite
    productions above the originals, and among equal priorities the
    most specific pattern wins. *)

type rsid_spec =
  | Direct of int
  | From_tag

type t = {
  name : string;
  pattern : Pattern.t;
  rsid : rsid_spec;
  priority : int;
}

val make : ?name:string -> ?priority:int -> Pattern.t -> rsid_spec -> t

val rsid_of : t -> Dise_isa.Insn.t -> int
(** Resolve the replacement sequence identifier for a concrete
    trigger. Raises [Invalid_argument] if [From_tag] is applied to a
    non-codeword. *)

val compare_precedence : t -> t -> int
(** Orders candidate productions for matching: higher priority first,
    then higher specificity, then name (for determinism). *)

val pp : Format.formatter -> t -> unit
