module I = Dise_isa.Insn
module Op = Dise_isa.Opcode
module Reg = Dise_isa.Reg
module R = Replacement

exception Composition_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Composition_error s)) fmt

type tri = Yes | No | Unknown

let tri_and a b =
  match a, b with
  | No, _ | _, No -> No
  | Unknown, _ | _, Unknown -> Unknown
  | Yes, Yes -> Yes

(* A concrete representative of a template, valid only for opcode/class
   inspection (operands are placeholders). *)
let skeleton : R.rinsn -> I.t option =
  let r0 = Reg.zero in
  function
  | R.Trigger -> None
  | R.Rop (op, _, _, _) -> Some (I.Rop (op, r0, r0, r0))
  | R.Ropi (op, _, _, _) -> Some (I.Ropi (op, r0, 0, r0))
  | R.Lda _ -> Some (I.Lda (r0, 0, r0))
  | R.Lui _ -> Some (I.Lui (0, r0))
  | R.Mem (op, _, _, _) -> Some (I.Mem (op, r0, 0, r0))
  | R.Br (op, _, _) -> Some (I.Br (op, r0, I.Abs 0))
  | R.Jmp _ -> Some (I.Jmp (I.Abs 0))
  | R.Jal _ -> Some (I.Jal (I.Abs 0))
  | R.Jr _ -> Some (I.Jr r0)
  | R.Jalr _ -> Some (I.Jalr (r0, r0))
  | R.Dbr (op, _, _) -> Some (I.Dbr (op, r0, 0))
  | R.Djmp _ -> Some (I.Djmp 0)
  | R.Nop -> Some I.Nop
  | R.Halt -> Some I.Halt

(* Template analogues of Insn.rs/rt/rd/imm. For a [Trigger] element the
   composite trigger IS the inner trigger, so the trigger-field
   directives pass through unchanged. *)
let t_rs : R.rinsn -> R.rreg option = function
  | R.Trigger -> Some R.Rrs
  | R.Rop (_, a, _, _) | R.Ropi (_, a, _, _) | R.Lda (a, _, _)
  | R.Mem (_, a, _, _) | R.Br (_, a, _) | R.Jr a | R.Jalr (a, _)
  | R.Dbr (_, a, _) ->
    Some a
  | R.Lui _ | R.Jmp _ | R.Jal _ | R.Djmp _ | R.Nop | R.Halt -> None

let t_rt : R.rinsn -> R.rreg option = function
  | R.Trigger -> Some R.Rrt
  | R.Rop (_, _, b, _) | R.Mem (_, _, _, b) -> Some b
  | _ -> None

let t_rd : R.rinsn -> R.rreg option = function
  | R.Trigger -> Some R.Rrd
  | R.Rop (_, _, _, c) | R.Ropi (_, _, _, c) | R.Lda (_, _, c)
  | R.Lui (_, c) | R.Jalr (_, c) ->
    Some c
  | R.Mem ((Op.Ldq | Op.Ldbu), _, _, d) -> Some d
  | R.Jal _ -> Some (R.Rlit Reg.ra)
  | _ -> None

let t_imm : R.rinsn -> R.rimm option = function
  | R.Trigger -> Some R.Iimm
  | R.Ropi (_, _, v, _) | R.Lda (_, v, _) | R.Lui (v, _)
  | R.Mem (_, _, v, _) ->
    Some v
  | _ -> None

let tri_reg want got =
  match want with
  | None -> Yes
  | Some w -> (
    match got with
    | None -> No
    | Some (R.Rlit g) -> if Reg.equal w g then Yes else No
    | Some (R.Rrs | R.Rrt | R.Rrd | R.Rparam _) -> Unknown)

let tri_imm want got =
  match want with
  | None -> Yes
  | Some pred -> (
    match got with
    | None -> No
    | Some (R.Ilit v) -> if Pattern.imm_matches pred v then Yes else No
    | Some (R.Iimm | R.Ipc | R.Iparam _ | R.Iparam2 _) -> Unknown)

(* Does pattern [p] match the concrete instructions this template can
   instantiate to? *)
let match3_template (p : Pattern.t) (x : R.rinsn) =
  match skeleton x with
  | None -> assert false (* Trigger handled by match3_pattern *)
  | Some skel ->
    let opcode_ok =
      match p.opcode_key with
      | None -> Yes
      | Some k -> if I.key skel = k then Yes else No
    in
    let class_ok =
      match p.opclass with
      | None -> Yes
      | Some c -> if I.cls skel = c then Yes else No
    in
    tri_and opcode_ok
      (tri_and class_ok
         (tri_and (tri_reg p.rs (t_rs x))
            (tri_and (tri_reg p.rt (t_rt x))
               (tri_and (tri_reg p.rd (t_rd x)) (tri_imm p.imm (t_imm x))))))

(* Does the outer pattern [po] match triggers described by the inner
   pattern [pi]? *)
let match3_pattern (po : Pattern.t) (pi : Pattern.t) =
  let opcode_ok =
    match po.opcode_key with
    | None -> Yes
    | Some k -> (
      match pi.opcode_key with
      | Some k' -> if k = k' then Yes else No
      | None -> (
        match pi.opclass with
        | Some c -> if I.cls_of_key k = c then Unknown else No
        | None -> Unknown))
  in
  let class_ok =
    match po.opclass with
    | None -> Yes
    | Some c -> (
      match pi.opclass with
      | Some c' -> if c = c' then Yes else No
      | None -> (
        match pi.opcode_key with
        | Some k -> if I.cls_of_key k = c then Yes else No
        | None -> Unknown))
  in
  let reg_ok want got =
    match want with
    | None -> Yes
    | Some w -> (
      match got with
      | Some g -> if Reg.equal w g then Yes else No
      | None -> Unknown)
  in
  let imm_ok =
    match po.imm with
    | None -> Yes
    | Some pred -> (
      match pi.imm with
      | Some (Pattern.Imm_eq v) ->
        if Pattern.imm_matches pred v then Yes else No
      | Some Pattern.Imm_neg -> (
        match pred with
        | Pattern.Imm_neg -> Yes
        | Pattern.Imm_nonneg -> No
        | Pattern.Imm_eq v -> if v >= 0 then No else Unknown)
      | Some Pattern.Imm_nonneg -> (
        match pred with
        | Pattern.Imm_nonneg -> Yes
        | Pattern.Imm_neg -> No
        | Pattern.Imm_eq v -> if v < 0 then No else Unknown)
      | None -> Unknown)
  in
  tri_and opcode_ok
    (tri_and class_ok
       (tri_and (reg_ok po.rs pi.rs)
          (tri_and (reg_ok po.rt pi.rt)
             (tri_and (reg_ok po.rd pi.rd) imm_ok))))

(* Pick the outer production that statically matches template [x]
   (or the trigger described by [trigger_pattern] when [x] is
   [Trigger]). Ambiguity is an error: composition is an offline
   software step and must not guess. *)
let decide ~outer ?trigger_pattern (x : R.rinsn) =
  let tri_of p =
    match x with
    | R.Trigger -> (
      match trigger_pattern with
      | Some pi -> match3_pattern p.Production.pattern pi
      | None -> Unknown)
    | _ -> match3_template p.Production.pattern x
  in
  let rec scan = function
    | [] -> None
    | p :: rest -> (
      match tri_of p with
      | Yes -> Some p
      | No -> scan rest
      | Unknown ->
        fail
          "cannot statically decide whether pattern [%s] matches template \
           [%s] during inlining"
          (Format.asprintf "%a" Pattern.pp p.Production.pattern)
          (Format.asprintf "%a" R.pp_rinsn x))
  in
  scan (Prodset.productions outer)

let outer_sequence_of outer p =
  match p.Production.rsid with
  | Production.Direct id -> (
    match Prodset.sequence outer id with
    | Some s -> s
    | None -> fail "outer production names unbound sequence R%d" id)
  | Production.From_tag ->
    fail "cannot statically inline a tag-indexed (aware) outer production"

(* Substitute the outer sequence's trigger-directives with template
   [x]'s field specifications; [base] offsets the outer sequence's
   internal control, [remap] relocates [x]'s own internal control. *)
let subst_outer ~outer_seq ~x ~base ~remap =
  let sub_reg = function
    | R.Rlit r -> R.Rlit r
    | R.Rrs -> (
      match t_rs x with
      | Some f -> f
      | None -> fail "T.RS directive: template has no rs field")
    | R.Rrt -> (
      match t_rt x with
      | Some f -> f
      | None -> fail "T.RT directive: template has no rt field")
    | R.Rrd -> (
      match t_rd x with
      | Some f -> f
      | None -> fail "T.RD directive: template has no rd field")
    | R.Rparam _ ->
      fail "outer production reads codeword parameters; cannot inline"
  in
  let sub_imm = function
    | R.Ilit v -> R.Ilit v
    | R.Iimm -> (
      match t_imm x with
      | Some f -> f
      | None -> fail "T.IMM directive: template has no immediate field")
    | R.Ipc -> R.Ipc
    | R.Iparam _ | R.Iparam2 _ ->
      fail "outer production reads codeword parameters; cannot inline"
  in
  let sub_target = function
    | (R.Tabs _ | R.Tlab _) as t -> t
    | R.Trel_param _ | R.Trel_param2 _ ->
      fail "outer production reads codeword parameters; cannot inline"
  in
  let remap_x () =
    match x with
    | R.Dbr (op, r, t) -> R.Dbr (op, r, remap t)
    | R.Djmp t -> R.Djmp (remap t)
    | other -> other
  in
  Array.map
    (function
      | R.Trigger -> remap_x ()
      | R.Rop (op, a, b, c) -> R.Rop (op, sub_reg a, sub_reg b, sub_reg c)
      | R.Ropi (op, a, v, c) -> R.Ropi (op, sub_reg a, sub_imm v, sub_reg c)
      | R.Lda (a, v, c) -> R.Lda (sub_reg a, sub_imm v, sub_reg c)
      | R.Lui (v, c) -> R.Lui (sub_imm v, sub_reg c)
      | R.Mem (op, a, v, c) -> R.Mem (op, sub_reg a, sub_imm v, sub_reg c)
      | R.Br (op, r, t) -> R.Br (op, sub_reg r, sub_target t)
      | R.Jmp t -> R.Jmp (sub_target t)
      | R.Jal t -> R.Jal (sub_target t)
      | R.Jr r -> R.Jr (sub_reg r)
      | R.Jalr (a, b) -> R.Jalr (sub_reg a, sub_reg b)
      | R.Dbr (op, r, off) -> R.Dbr (op, sub_reg r, base + off)
      | R.Djmp off -> R.Djmp (base + off)
      | R.Nop -> R.Nop
      | R.Halt -> R.Halt)
    outer_seq

let inline_seq ~outer ?trigger_pattern (seq : R.t) : R.t =
  let n = Array.length seq in
  let decisions =
    Array.map
      (fun x ->
        match decide ~outer ?trigger_pattern x with
        | None -> None
        | Some p -> Some (outer_sequence_of outer p))
      seq
  in
  let lengths =
    Array.map
      (fun d -> match d with Some s -> Array.length s | None -> 1)
      decisions
  in
  (* positions.(j) = new offset of old instruction j; positions.(n) =
     new total length, the fall-off-the-end target. *)
  let positions = Array.make (n + 1) 0 in
  for j = 0 to n - 1 do
    positions.(j + 1) <- positions.(j) + lengths.(j)
  done;
  let remap t =
    if t < 0 || t > n then fail "DISE transfer to offset %d out of range" t
    else positions.(t)
  in
  let blocks =
    Array.mapi
      (fun j x ->
        match decisions.(j) with
        | Some outer_seq ->
          subst_outer ~outer_seq ~x ~base:positions.(j) ~remap
        | None -> (
          match x with
          | R.Dbr (op, r, t) -> [| R.Dbr (op, r, remap t) |]
          | R.Djmp t -> [| R.Djmp (remap t) |]
          | other -> [| other |]))
      seq
  in
  Array.concat (Array.to_list blocks)

let dedicated_of_set set =
  List.concat_map (fun (_, s) -> R.dedicated_used s) (Prodset.sequences set)
  |> List.sort_uniq compare

let nest ~outer ~inner =
  (* Sequence-id spaces must be disjoint. *)
  let outer_ids = List.map fst (Prodset.sequences outer) in
  let inner_ids = List.map fst (Prodset.sequences inner) in
  List.iter
    (fun id ->
      if List.mem id outer_ids then
        fail "sequence id R%d bound by both production sets" id)
    inner_ids;
  (* Resolve dedicated-register conflicts by renaming the inner set. *)
  let outer_ded = dedicated_of_set outer in
  let inner_ded = dedicated_of_set inner in
  let conflicts = List.filter (fun d -> List.mem d outer_ded) inner_ded in
  let inner =
    if conflicts = [] then inner
    else begin
      let used = ref (outer_ded @ inner_ded) in
      let fresh () =
        let rec go i =
          if i >= Reg.num_dedicated then
            fail "dedicated registers exhausted during composition renaming"
          else if List.mem i !used then go (i + 1)
          else begin
            used := i :: !used;
            i
          end
        in
        go 0
      in
      let map = List.map (fun d -> (d, fresh ())) conflicts in
      Prodset.rename_dedicated
        (fun d -> match List.assoc_opt d map with Some d' -> d' | None -> d)
        inner
    end
  in
  let has_from_tag =
    List.exists
      (fun p -> p.Production.rsid = Production.From_tag)
      (Prodset.productions inner)
  in
  let has_direct =
    List.exists
      (fun p ->
        match p.Production.rsid with
        | Production.Direct _ -> true
        | Production.From_tag -> false)
      (Prodset.productions inner)
  in
  if has_from_tag && has_direct then
    fail "inner set mixes tagged and direct productions; compose separately";
  let prio_bump =
    1
    + List.fold_left
        (fun m p -> max m p.Production.priority)
        0
        (Prodset.productions outer)
  in
  let next_id =
    ref (1 + max (Prodset.max_rsid outer) (Prodset.max_rsid inner))
  in
  let result = ref outer in
  if has_from_tag then begin
    (* Aware inner: every bound sequence is a tag target and keeps its
       id; inline each under the codeword pattern's trigger info. *)
    List.iter
      (fun p ->
        let pat = p.Production.pattern in
        List.iter
          (fun (id, seq) ->
            let inl = inline_seq ~outer ~trigger_pattern:pat seq in
            result := Prodset.define_sequence !result id inl)
          (Prodset.sequences inner);
        result :=
          Prodset.add_production !result
            { p with Production.priority = p.Production.priority + prio_bump })
      (Prodset.productions inner)
  end
  else begin
    (* Transparent inner: inline per production; identical inlinings of
       a shared sequence are deduplicated, diverging ones re-bound. *)
    let memo : (int, (R.t * int) list ref) Hashtbl.t = Hashtbl.create 8 in
    List.iter
      (fun p ->
        match p.Production.rsid with
        | Production.From_tag -> assert false
        | Production.Direct id ->
          let seq =
            match Prodset.sequence inner id with
            | Some s -> s
            | None -> fail "inner production names unbound sequence R%d" id
          in
          let inl =
            inline_seq ~outer ~trigger_pattern:p.Production.pattern seq
          in
          let variants =
            match Hashtbl.find_opt memo id with
            | Some l -> l
            | None ->
              let l = ref [] in
              Hashtbl.replace memo id l;
              l
          in
          let new_id =
            match
              List.find_opt (fun (s, _) -> R.equal s inl) !variants
            with
            | Some (_, existing) -> existing
            | None ->
              let fresh =
                if !variants = [] && R.equal inl seq then id
                else if !variants = [] then id
                else begin
                  incr next_id;
                  !next_id - 1
                end
              in
              variants := (inl, fresh) :: !variants;
              fresh
          in
          result := Prodset.define_sequence !result new_id inl;
          result :=
            Prodset.add_production !result
              {
                p with
                Production.rsid = Production.Direct new_id;
                priority = p.Production.priority + prio_bump;
              })
      (Prodset.productions inner)
  end;
  !result

let count_triggers seq =
  Array.fold_left
    (fun n x -> match x with R.Trigger -> n + 1 | _ -> n)
    0 seq

let merge_sequences (a : R.t) (b : R.t) : R.t =
  let n = Array.length a in
  if n = 0 || a.(n - 1) <> R.Trigger then
    fail "merge: first sequence must end with its trigger";
  if count_triggers a <> 1 then
    fail "merge: first sequence must contain exactly one trigger";
  if count_triggers b <> 1 then
    fail "merge: second sequence must contain exactly one trigger";
  let prefix = Array.sub a 0 (n - 1) in
  Array.iter
    (function
      | R.Dbr (_, _, t) | R.Djmp t ->
        if t >= n - 1 then
          fail "merge: first sequence's internal control reaches its trigger"
      | _ -> ())
    prefix;
  let shift = n - 1 in
  let b' =
    Array.map
      (function
        | R.Dbr (op, r, t) -> R.Dbr (op, r, t + shift)
        | R.Djmp t -> R.Djmp (t + shift)
        | other -> other)
      b
  in
  Array.append prefix b'

let shift_direct_rsids off set =
  List.iter
    (fun p ->
      if p.Production.rsid = Production.From_tag then
        fail "shift_direct_rsids: set contains tag-indexed productions")
    (Prodset.productions set);
  let shifted = ref Prodset.empty in
  List.iter
    (fun (id, seq) ->
      shifted := Prodset.define_sequence !shifted (id + off) seq)
    (Prodset.sequences set);
  List.iter
    (fun p ->
      let rsid =
        match p.Production.rsid with
        | Production.Direct id -> Production.Direct (id + off)
        | Production.From_tag -> assert false
      in
      shifted := Prodset.add_production !shifted { p with Production.rsid })
    (Prodset.productions set);
  !shifted
