(** The DISE engine: applies a production set to the fetch stream.

    [expand] is the performance-critical path (it inspects every
    fetched instruction), so the engine compiles the production set
    into a per-opcode dispatch table at construction and memoizes
    expansions per static instruction (a static instruction always
    instantiates to the same sequence, because directives only read
    trigger bits and the trigger PC).

    When built with a {e dense} image (every instruction 4 bytes —
    see {!Dise_isa.Program.Image.is_dense}), the memo is a flat array
    indexed by [(pc - base) / 4]: the per-fetch lookup is O(1) array
    reads with no allocation. Otherwise a hashtable keyed by the
    [(pc, instruction)] pair is used. Both memos key on the
    [(pc, instruction)] pair — the dense array stores the trigger it
    memoized and recomputes on mismatch — because PC alone would
    return a stale expansion if an image were re-laid-out with a
    different instruction at the same address. The two memo variants
    are observationally identical; the differential fuzzer
    ({!Dise_fuzz}) cross-checks them on every run.

    The engine performs {e functional} expansion only; PT/RT capacity
    effects are modelled separately by {!Controller} from the
    expansion events. *)

type t

exception Expansion_error of string
(** A production matched but its sequence id is unbound, or
    instantiation failed. *)

val create : ?image:Dise_isa.Program.Image.t -> Prodset.t -> t
(** [create ~image prodset] compiles the production set; passing the
    image the engine will expand against enables the dense per-index
    expansion memo when the image is dense. Omitting it (or passing a
    sparse image) selects the hashtable memo — results are identical,
    only the lookup cost differs. *)

val prodset : t -> Prodset.t

val set_prodset : t -> Prodset.t -> unit
(** Swap the live production set: rebuilds the dispatch table, clears
    both memos, and bumps the invalidation generation so any machine
    attached via {!attach_jit} retires its superblocks. *)

val invalidate : t -> unit
(** Invalidate derived state without changing the production set —
    the hook for PT/RT writes by the controller: clears the memos and
    bumps the generation counter. *)

val generation : t -> int
(** Current invalidation generation (starts at 0; {!set_prodset} and
    {!invalidate} each bump it once). *)

val attach_jit : ?threshold:int -> t -> Dise_machine.Machine.t -> unit
(** Enable the machine's superblock JIT wired to this engine's
    generation counter, so {!set_prodset}/{!invalidate} retire its
    compiled traces. [threshold] defaults to
    {!Dise_machine.Machine.default_jit_threshold}.

    Superblock state is owned by the engine, not the machine: the
    first attach creates it, and every later attach over the same
    image re-adopts it ({!Dise_machine.Machine.adopt_jit}), so traces
    compiled while serving one machine start the next machine at
    steady state. A [threshold] passed after the first attach is
    ignored while the cached state remains valid. Machines sharing the
    state must run to completion one at a time — interleaved stepping
    risks a generation bump from one machine retiring traces the other
    is executing. *)

val expand : t -> pc:int -> Dise_isa.Insn.t -> Dise_machine.Machine.expansion option
(** [None] when no production matches. An identity production yields
    [Some] with the trigger as the single element (it is still an
    expansion, and is costed as one). *)

val expand_result :
  t ->
  pc:int ->
  Dise_isa.Insn.t ->
  (Dise_machine.Machine.expansion option, Dise_isa.Diag.t) result
(** Exception-free {!expand}: an {!Expansion_error} becomes
    [Error (Diag.Expansion _)], reported through the shared
    {!Dise_isa.Diag} printer (exit-code class "simulation"). *)

val expander : t -> Dise_machine.Machine.expander
(** The closure to plug into {!Dise_machine.Machine.create}. *)

val expansions_performed : t -> int
(** Total expansions returned (cache hits included). *)

val distinct_triggers : t -> int
(** Number of distinct static trigger PCs seen so far. *)
