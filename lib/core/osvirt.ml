module Machine = Dise_machine.Machine
module Regfile = Dise_machine.Regfile
module Reg = Dise_isa.Reg

type pid = int

exception Rejected of Safety.finding list

type process = {
  pid : pid;
  name : string;
  machine : Machine.t;
  user_acf : Prodset.t option;
  engine : Engine.t ref;
  saved_dregs : int array;
}

type t = {
  mutable kernel_set : Prodset.t;
  mutable kernel_regs : (int * int) list;
  reserved : int list;
  controller_cfg : Controller.config option;
  mutable controller : Controller.t option;
  processes : (pid, process) Hashtbl.t;
  mutable current : pid option;
  mutable next_pid : int;
  mutable switches : int;
}

let create ?controller_cfg ?(reserved_dedicated = [ 2; 3 ]) () =
  {
    kernel_set = Prodset.empty;
    kernel_regs = [];
    reserved = reserved_dedicated;
    controller_cfg;
    controller = None;
    processes = Hashtbl.create 8;
    current = None;
    next_pid = 1;
    switches = 0;
  }

let inspect ~reserved set =
  match Safety.errors (Safety.check ~reserved_dedicated:reserved set) with
  | [] -> ()
  | errs -> raise (Rejected errs)

let combined t user =
  match user with
  | None -> t.kernel_set
  | Some u -> Prodset.union t.kernel_set u

let rebuild_controller t =
  match t.controller_cfg with
  | None -> ()
  | Some cfg -> t.controller <- Some (Controller.create cfg t.kernel_set)

let rebuild_engines t =
  Hashtbl.iter
    (fun _ p -> p.engine := Engine.create (combined t p.user_acf))
    t.processes

let install_kernel_acf t ~name ?(regs = []) set =
  ignore name;
  inspect ~reserved:[] set;
  t.kernel_set <- Prodset.union t.kernel_set set;
  t.kernel_regs <- regs @ t.kernel_regs;
  (* Propagate register initializations to every process's saved
     state (and live state, for the current process). *)
  Hashtbl.iter
    (fun _ p ->
      List.iter
        (fun (d, v) ->
          p.saved_dregs.(d) <- v;
          Regfile.set (Machine.regs p.machine) (Reg.d d) v)
        regs)
    t.processes;
  rebuild_engines t;
  rebuild_controller t

let spawn t ~name ?acf ?(dise_regs = []) image =
  (match acf with Some set -> inspect ~reserved:t.reserved set | None -> ());
  let pid = t.next_pid in
  t.next_pid <- pid + 1;
  let engine = ref (Engine.create (combined t acf)) in
  (* Expansions are reported to the controller so PT/RT reload costs of
     context switching are accounted even in functional runs. *)
  let expander ~pc insn =
    match Engine.expand !engine ~pc insn with
    | Some e as result ->
      (match t.controller with
      | Some c ->
        ignore
          (Controller.on_expansion c ~rsid:e.Machine.rsid
             ~len:(Array.length e.Machine.seq))
      | None -> ());
      result
    | None -> None
  in
  let machine = Machine.create ~expander image in
  let saved_dregs = Array.make Reg.num_dedicated 0 in
  List.iter (fun (d, v) -> saved_dregs.(d) <- v) (t.kernel_regs @ dise_regs);
  Array.iteri
    (fun d v -> Regfile.set (Machine.regs machine) (Reg.d d) v)
    saved_dregs;
  let p = { pid; name; machine; user_acf = acf; engine; saved_dregs } in
  if t.controller = None then rebuild_controller t;
  Hashtbl.replace t.processes pid p;
  pid

let get t pid =
  match Hashtbl.find_opt t.processes pid with
  | Some p -> p
  | None -> invalid_arg (Printf.sprintf "Osvirt: unknown pid %d" pid)

let machine t pid = (get t pid).machine

let save_dregs p =
  for d = 0 to Reg.num_dedicated - 1 do
    p.saved_dregs.(d) <- Regfile.get (Machine.regs p.machine) (Reg.d d)
  done

let restore_dregs p =
  Array.iteri
    (fun d v -> Regfile.set (Machine.regs p.machine) (Reg.d d) v)
    p.saved_dregs

let switch_to t pid =
  match t.current with
  | Some cur when cur = pid -> ()
  | _ ->
    (match t.current with
    | Some cur -> (
      match Hashtbl.find_opt t.processes cur with
      | Some p -> save_dregs p
      | None -> ())
    | None -> ());
    let p = get t pid in
    restore_dregs p;
    (match t.controller with
    | Some c -> Controller.context_switch c
    | None -> ());
    t.current <- Some pid;
    t.switches <- t.switches + 1

let run_slice t pid ~steps =
  switch_to t pid;
  let m = (get t pid).machine in
  let rec go n =
    if n >= steps then `Ran n
    else
      match Machine.step m with
      | Some _ -> go (n + 1)
      | None -> `Halted
  in
  go 0

let live t =
  Hashtbl.fold
    (fun pid p acc -> if Machine.halted p.machine then acc else pid :: acc)
    t.processes []
  |> List.sort compare

let round_robin ?(slice = 10_000) ?(max_slices = 10_000) t =
  let rec go budget =
    if budget <= 0 then failwith "Osvirt.round_robin: slice budget exhausted";
    match live t with
    | [] -> ()
    | pids ->
      List.iter (fun pid -> ignore (run_slice t pid ~steps:slice)) pids;
      go (budget - List.length pids)
  in
  go max_slices

let switches t = t.switches

let controller t =
  match t.controller with
  | Some c -> c
  | None ->
    (* No controller configured: expose a free one for stats symmetry. *)
    Controller.create Controller.perfect_config t.kernel_set
