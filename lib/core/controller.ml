type config = {
  pt_entries : int;
  pt_perfect : bool;
  rt_entries : int;
  rt_assoc : int;
  rt_entries_per_block : int;
  rt_perfect : bool;
  miss_penalty : int;
  compose_penalty : int;
  composing : bool;
}

let default_config =
  {
    pt_entries = 32;
    pt_perfect = false;
    rt_entries = 2048;
    rt_assoc = 2;
    rt_entries_per_block = 1;
    rt_perfect = false;
    miss_penalty = 30;
    compose_penalty = 150;
    composing = false;
  }

let perfect_config =
  { default_config with pt_perfect = true; rt_perfect = true }

type t = {
  cfg : config;
  pt : Pt.t;
  rt : Rt.t;
  mutable stall_cycles : int;
}

let create cfg prodset =
  let rt =
    if cfg.rt_perfect then Rt.perfect ()
    else
      Rt.create ~entries_per_block:cfg.rt_entries_per_block
        ~entries:cfg.rt_entries ~assoc:cfg.rt_assoc ()
  in
  { cfg; pt = Pt.create ~capacity:cfg.pt_entries prodset; rt; stall_cycles = 0 }

let config t = t.cfg

let on_fetch t ~key =
  if t.cfg.pt_perfect then 0
  else
    match Pt.access t.pt ~key with
    | `Hit -> 0
    | `Miss _ ->
      t.stall_cycles <- t.stall_cycles + t.cfg.miss_penalty;
      t.cfg.miss_penalty

let on_expansion t ~rsid ~len =
  match Rt.access t.rt ~rsid ~len with
  | `Hit -> 0
  | `Miss ->
    let penalty =
      if t.cfg.composing then t.cfg.compose_penalty else t.cfg.miss_penalty
    in
    t.stall_cycles <- t.stall_cycles + penalty;
    penalty

let context_switch t =
  Rt.invalidate t.rt;
  if not t.cfg.pt_perfect then Pt.invalidate t.pt

type stats = {
  pt_accesses : int;
  pt_misses : int;
  rt_accesses : int;
  rt_misses : int;
  stall_cycles : int;
}

let stats t =
  {
    pt_accesses = Pt.accesses t.pt;
    pt_misses = Pt.misses t.pt;
    rt_accesses = Rt.accesses t.rt;
    rt_misses = Rt.misses t.rt;
    stall_cycles = t.stall_cycles;
  }
