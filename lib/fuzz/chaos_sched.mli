(** Deterministic chaos schedules for the sharded serve tier.

    A schedule is a JSON document pairing a seed with a list of
    events, each triggered by the running count of client requests
    the coordinator has submitted:

    {v
    {"record": "chaos_schedule",
     "seed": 42,
     "events": [
       {"after": 40, "action": "kill",    "shard": 2, "permanent": true},
       {"after": 10, "action": "stall",   "shard": 1, "ms": 500},
       {"after": 20, "action": "torn",    "shard": 0},
       {"after": 15, "action": "drop_ping", "shard": 1},
       {"after": 12, "action": "suspect", "shard": 0},
       {"after": 0,  "action": "truncate_journal", "shard": 1}
     ]}
    v}

    Every unspecified knob an action needs (the byte to cut a torn
    frame at, how much journal tail to chop) is drawn from the seed,
    so a schedule file replays {e identically} on every run — chaos
    runs are reproducible by construction, and a failing run's
    schedule is its own repro artifact.

    [truncate_journal] is a {e startup} fault (apply it with
    {!truncate_journals} before the tier boots: it chops bytes off
    the shard's journal tail, simulating a crash mid-append); every
    other action is handed to the coordinator through its [?chaos]
    hook ({!hook}) as the request count passes each event's
    [after]. *)

type action =
  | Kill of { shard : int; permanent : bool }
  | Stall of { shard : int; ms : int }
  | Torn of { shard : int }
  | Drop_ping of { shard : int }
  | Suspect of { shard : int }
  | Truncate_journal of { shard : int }

type event = { after : int; action : action }

type t

val of_json : Dise_telemetry.Json.t -> (t, Dise_isa.Diag.t) result
(** Decode and validate one schedule document. Unknown actions,
    negative counts, and missing members are rejected with a parse
    diagnostic naming the offending event. *)

val of_file : string -> (t, Dise_isa.Diag.t) result

val to_json : t -> Dise_telemetry.Json.t
(** Canonical re-encoding (validates against
    doc/schema/chaos_schedule.schema.json). *)

val seed : t -> int

val events : t -> event list
(** In file order. *)

val truncate_journals : t -> root:string -> int
(** Apply every [truncate_journal] event against the journal root
    ([<root>/worker-<shard>/journal.jsonl]): each chops a
    seed-determined number of bytes (at least 1, at most a full
    trailing record) off the file tail, leaving exactly the torn tail
    a mid-append crash leaves. Missing files are skipped. Returns the
    number of files truncated. *)

val hook : t -> requests:int -> Dise_service.Coordinator.chaos_action list
(** The coordinator-facing schedule executor. Stateful: each event
    fires exactly once, when [requests] first reaches (or passes) its
    [after] count; randomized knobs are drawn from the schedule seed
    in event order, so equal schedules yield equal action streams.
    Pass [hook t] as [?chaos] to {!Dise_service.Coordinator.run_channel}
    or [run_socket]. *)
