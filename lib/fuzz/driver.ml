module Rng = Dise_workload.Rng

type found = {
  iteration : int;
  case : Case.t;
  shrunk : Case.t;
  failure : Oracle.failure;
  artifact : string option;
}

type outcome = Clean of { iterations : int } | Found of found

let fuzz ?mutation ?out ?(log = fun (_ : string) -> ()) ~iterations ~seed () =
  let rng = Rng.create seed in
  let rec go i =
    if i >= iterations then Clean { iterations }
    else begin
      let case = Case.generate rng in
      if i mod 50 = 0 then
        log (Printf.sprintf "iteration %d/%d: %s" i iterations (Case.summary case));
      match Oracle.check ?mutation case with
      | Oracle.Pass _ -> go (i + 1)
      | Oracle.Fail failure ->
        log
          (Printf.sprintf "iteration %d: FAIL [%s] %s" i failure.Oracle.check
             failure.Oracle.detail);
        log "shrinking...";
        let shrunk = Shrink.minimize ?mutation case in
        (* The shrunk case fails by construction; re-run it to record
           its own failure, which may differ in detail from the
           original's. *)
        let failure =
          match Oracle.check ?mutation shrunk with
          | Oracle.Fail f -> f
          | Oracle.Pass _ -> failure
        in
        log (Printf.sprintf "shrunk to: %s" (Case.summary shrunk));
        let artifact =
          match out with
          | None -> None
          | Some dir ->
            let dir = Artifact.write ~dir ~case:shrunk ?mutation ~failure () in
            log (Printf.sprintf "repro artifact: %s" dir);
            Some dir
        in
        Found { iteration = i; case; shrunk; failure; artifact }
    end
  in
  go 0

let self_test_iterations = 50

let self_test ?out ?(log = fun (_ : string) -> ()) ~seed () =
  let mutation = Oracle.Nop_trigger_every 3 in
  log "self-test: injecting mutation nop_trigger_every 3";
  match fuzz ~mutation ?out ~log ~iterations:self_test_iterations ~seed () with
  | Found f -> Ok f
  | Clean { iterations } ->
    Error
      (Printf.sprintf
         "self-test FAILED: injected mutation escaped %d iterations \
          undetected — the differential oracle has lost its teeth"
         iterations)

let replay ?(log = fun (_ : string) -> ()) path =
  match Artifact.load path with
  | Error d -> Error d
  | Ok (case, mutation, recorded) ->
    log (Printf.sprintf "replaying: %s" (Case.summary case));
    (match mutation with
    | None -> ()
    | Some (Oracle.Nop_trigger_every k) ->
      log (Printf.sprintf "re-applying mutation: nop_trigger_every %d" k));
    let verdict = Oracle.check ?mutation case in
    log (Format.asprintf "verdict: %a" Oracle.pp_verdict verdict);
    let reproduced =
      match (recorded, verdict) with
      | Some _, Oracle.Fail _ -> true
      | None, Oracle.Pass _ -> true
      | _ -> false
    in
    Ok reproduced
