module Program = Dise_isa.Program
module I = Dise_isa.Insn
module Diag = Dise_isa.Diag
module Json = Dise_telemetry.Json
module Lang = Dise_core.Lang

let mkdir_p dir =
  let rec go d =
    if d <> "" && d <> "/" && d <> "." && not (Sys.file_exists d) then begin
      go (Filename.dirname d);
      try Unix.mkdir d 0o755
      with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
    end
  in
  go dir

let write_file path contents =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc contents)

let program_to_string prog =
  let b = Buffer.create 4096 in
  List.iter
    (function
      | Program.Label l ->
        Buffer.add_string b l;
        Buffer.add_string b ":\n"
      | Program.Ins i ->
        Buffer.add_string b "  ";
        Buffer.add_string b (I.to_string i);
        Buffer.add_char b '\n')
    prog;
  Buffer.contents b

let failure_to_json (f : Oracle.failure) =
  Json.Obj
    [
      ("check", Json.String f.Oracle.check);
      ("detail", Json.String f.Oracle.detail);
    ]

let write ~dir ~case ?mutation ~failure () =
  mkdir_p dir;
  let doc =
    Json.Obj
      [
        ("fuzz_case", Case.to_json case);
        ( "mutation",
          match mutation with
          | None -> Json.Null
          | Some m -> Oracle.mutation_to_json m );
        ("failure", failure_to_json failure);
      ]
  in
  write_file (Filename.concat dir "case.json")
    (Json.to_string ~indent:true doc ^ "\n");
  (* Derivation is informational here: if it raises (e.g. the failure
     WAS a derivation crash), the artifact still replays from
     case.json alone. *)
  (try
     let b = Case.build case in
     write_file (Filename.concat dir "program.s")
       (program_to_string b.Case.program);
     write_file
       (Filename.concat dir "productions.dise")
       (Lang.to_string b.Case.prodset)
   with _ -> ());
  write_file (Filename.concat dir "report.txt")
    (Printf.sprintf "fuzz failure: [%s] %s\ncase: %s\nmutation: %s\n"
       failure.Oracle.check failure.Oracle.detail (Case.summary case)
       (match mutation with
       | None -> "none"
       | Some (Oracle.Nop_trigger_every k) ->
         Printf.sprintf "nop_trigger_every %d" k));
  dir

let parse_err msg = Error (Diag.Parse { source = "fuzz-artifact"; line = 0; msg })

let load path =
  let file =
    if Sys.file_exists path && Sys.is_directory path then
      Filename.concat path "case.json"
    else path
  in
  match
    let ic = open_in_bin file in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | exception Sys_error msg -> parse_err msg
  | contents -> (
    match Json.parse contents with
    | exception Json.Parse_error msg -> parse_err msg
    | doc -> (
      match Json.member "fuzz_case" doc with
      | None -> parse_err "missing member \"fuzz_case\""
      | Some case_doc -> (
        match Case.of_json case_doc with
        | Error d -> Error d
        | Ok case -> (
          let failure =
            match Json.member "failure" doc with
            | Some f -> (
              match (Json.member "check" f, Json.member "detail" f) with
              | Some (Json.String check), Some (Json.String detail) ->
                Some { Oracle.check; detail }
              | _ -> None)
            | None -> None
          in
          match Json.member "mutation" doc with
          | None | Some Json.Null -> Ok (case, None, failure)
          | Some m -> (
            match Oracle.mutation_of_json m with
            | Ok mut -> Ok (case, Some mut, failure)
            | Error d -> Error d)))))
