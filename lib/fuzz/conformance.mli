(** The versioned architectural conformance suite.

    Where the differential fuzzer ({!Driver}) hunts for divergence on
    random programs, this module pins down {e known} behaviour: named
    assembly vectors with expected signatures live in [test/arch/]
    (one [manifest.json] plus the [.s]/[.dise] sources it names), and
    every run executes each vector on all four expander backends —

    - [naive] — {!Naive.expander}, the reference semantics;
    - [engine-memo] — the dense-image memoized {!Dise_core.Engine};
    - [engine-hash] — the same engine without a dense image
      (hashtable memoization);
    - [engine-jit] — the dense engine with the superblock JIT
      attached at a compile threshold of 2, so hot vectors exercise
      the compiled path.

    A vector's {e signature} is ["exit:executed:regs:mem"] — exit
    code, dynamic instruction count, architectural register checksum,
    and memory checksum after the run. The naive backend must
    reproduce the manifest's recorded signature; the optimized
    backends must reproduce the naive run's. [disesim conformance]
    drives this module, renders the per-cell CSV/HTML report, and
    appends a {!Dise_telemetry.Trajectory} record so wall-clock and
    pass-rate move under version control (RESULTS_TRACKING.md).

    Per-cell run latency is observed in the process-wide metrics
    histogram ["conformance_run_ns"], whose per-run delta supplies
    the report's quantiles. *)

type vector = {
  name : string;
  program : string;  (** [.s] path relative to the suite directory *)
  productions : string option;  (** [.dise] path, likewise *)
  drs : (int * int) list;  (** dedicated-register init, [(n, value)] *)
  max_steps : int;
  signature : string;  (** expected; [""] until [--update] records it *)
}

type cell = {
  vector : string;
  backend : string;
  pass : bool;
  signature : string;  (** [""] when the run failed *)
  expected : string;
  steps : int;
  expansions : int;
  wall_s : float;
  error : string option;  (** runtime/expansion error, if any *)
}

type report = {
  suite : string;  (** ["quick"] or ["full"] *)
  cells : cell list;  (** vector x backend, manifest order *)
  vectors : int;
  passed : int;  (** cells with [pass = true] *)
  wall_s : float;
  p50_ns : int;  (** per-cell run latency quantiles *)
  p95_ns : int;
  p99_ns : int;
  fuzz_cases : int;  (** [full] suite only *)
  fuzz_failures : int;
}

val backends : string list
(** [["naive"; "engine-memo"; "engine-hash"; "engine-jit"]]. *)

val default_dir : string
(** ["test/arch"]. *)

val load_suite : dir:string -> (vector list, Dise_isa.Diag.t) result
(** Parse [dir]/manifest.json. Errors are [Diag.Parse] (malformed
    manifest) or [Diag.Cache] (unreadable file). *)

val run_vector : dir:string -> vector -> cell list
(** Run one vector on every backend (fresh machines; the naive run
    first, its signature becoming the optimized backends' [expected]
    when it succeeds). Source-level failures (unparseable program or
    production set) yield one failing cell per backend. *)

val run_suite : ?fuzz:int -> dir:string -> vector list -> report
(** Run the whole suite. [fuzz] > 0 (the ["full"] suite) additionally
    runs that many fixed-seed {!Oracle.check} iterations, folding
    failures into [fuzz_failures] (they do not affect [passed], which
    counts vector cells only). *)

val update_signatures :
  dir:string -> vector list -> (vector list, Dise_isa.Diag.t) result
(** Recompute every vector's signature from a fresh naive run —
    the authoring path for new vectors ([disesim conformance
    --update]). Fails on the first vector whose naive run fails. *)

val save_manifest : dir:string -> vector list -> unit
(** Rewrite [dir]/manifest.json (pretty-printed, stable order). *)

val csv_of_report : report -> string
(** Header [vector,backend,pass,signature,expected,steps,expansions,
    wall_s,error] then one row per cell. *)

val html_of_report : report -> string
(** Self-contained single-page report: summary line, quantiles, and
    the per-cell table with failing rows highlighted. *)

val trajectory_record : ts:int -> report -> Dise_telemetry.Trajectory.record
(** Tool ["conformance"]; [extra] carries [vectors], [fuzz_cases],
    and [fuzz_failures]. *)
