module Json = Dise_telemetry.Json
module Cache = Dise_service.Cache
module Server = Dise_service.Server
module Serve_config = Dise_service.Serve_config
module Request = Dise_service.Request
module Resilience = Dise_service.Resilience
module Rng = Dise_workload.Rng

type report = { passed : int; failures : (string * string) list }

let run_checks checks =
  let passed = ref 0 and failures = ref [] in
  List.iter
    (fun (name, f) ->
      match f () with
      | Ok () -> incr passed
      | Error detail -> failures := (name, detail) :: !failures
      | exception ex ->
        failures := (name, "raised " ^ Printexc.to_string ex) :: !failures)
    checks;
  { passed = !passed; failures = List.rev !failures }

let merge a b =
  { passed = a.passed + b.passed; failures = a.failures @ b.failures }

let pp_report ppf r =
  if r.failures = [] then
    Format.fprintf ppf "%d fault-injection checks passed" r.passed
  else begin
    Format.fprintf ppf "%d passed, %d FAILED:" r.passed
      (List.length r.failures);
    List.iter
      (fun (name, detail) -> Format.fprintf ppf "@\n  [%s] %s" name detail)
      r.failures
  end

(* --- helpers ------------------------------------------------------------ *)

let temp_dir stem =
  let d =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "%s.%d.%d" stem (Unix.getpid ()) (Random.bits ()))
  in
  Unix.mkdir d 0o755;
  d

let rec rm_rf path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter (fun n -> rm_rf (Filename.concat path n)) (Sys.readdir path);
      (try Unix.rmdir path with Unix.Unix_error _ -> ())
    end
    else try Sys.remove path with Sys_error _ -> ()

let write_raw path contents =
  let oc = open_out_bin path in
  output_string oc contents;
  close_out oc

let read_raw path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* --- cache faults ------------------------------------------------------- *)

let payload = Json.Obj [ ("v", Json.Int 42) ]
let request = Json.Obj [ ("probe", Json.Bool true) ]

let payload_ok = function
  | None -> true
  | Some p -> p = payload

(* Corruptions exercised against every entry. Each returns the bytes
   to plant in place of a valid entry. *)
let corruptions valid =
  [
    ("truncated", String.sub valid 0 (String.length valid / 2));
    ("empty", "");
    ("garbage", "{\"salt\": not json at all");
    ( "first-byte-flip",
      "X" ^ String.sub valid 1 (String.length valid - 1) );
    ( "stale-salt",
      Printf.sprintf
        "{\"salt\":\"bogus\",\"key\":\"k\",\"request\":{},\"payload\":{}}\n" );
  ]

let cache_recovery () =
  let dir = temp_dir "dise-fuzz-cache" in
  Fun.protect
    ~finally:(fun () -> rm_rf dir)
    (fun () ->
      let c = Cache.create ~dir in
      let k = Cache.key "fuzz-probe" in
      Cache.store c ~key:k ~request ~payload;
      if Cache.find c ~key:k <> Some payload then
        Error "fresh entry does not read back"
      else begin
        let valid = read_raw (Cache.path c ~key:k) in
        let rec go = function
          | [] -> Ok ()
          | (name, bytes) :: rest -> (
            write_raw (Cache.path c ~key:k) bytes;
            match Cache.find c ~key:k with
            | exception ex ->
              Error
                (Printf.sprintf "%s corruption: find raised %s" name
                   (Printexc.to_string ex))
            | Some p when p <> payload && name <> "first-byte-flip" ->
              Error (Printf.sprintf "%s corruption: wrong payload" name)
            | _ ->
              (* recovery must be idempotent and must not block a
                 subsequent store+find round trip *)
              if Cache.find c ~key:k <> None then
                Error
                  (Printf.sprintf "%s corruption: entry not retired" name)
              else begin
                Cache.store c ~key:k ~request ~payload;
                if Cache.find c ~key:k <> Some payload then
                  Error
                    (Printf.sprintf "%s corruption: cannot re-store" name)
                else go rest
              end)
        in
        go (corruptions valid)
      end)

let cache_invalidate_idempotent () =
  let dir = temp_dir "dise-fuzz-cache" in
  Fun.protect
    ~finally:(fun () -> rm_rf dir)
    (fun () ->
      let c = Cache.create ~dir in
      let k = Cache.key "fuzz-invalidate" in
      Cache.store c ~key:k ~request ~payload;
      Cache.invalidate c ~key:k;
      Cache.invalidate c ~key:k;
      (* twice: second is a no-op *)
      if Cache.find c ~key:k <> None then Error "entry survived invalidate"
      else begin
        Cache.store c ~key:k ~request ~payload;
        if Cache.find c ~key:k <> Some payload then
          Error "cannot store after invalidate"
        else Ok ()
      end)

(* Several domains hammer one key with find/store/invalidate while
   corruption is injected underneath them: the documented contract is
   that no call ever raises and every find returns either a miss or
   the valid payload. *)
let cache_hammer ~seed () =
  let dir = temp_dir "dise-fuzz-cache" in
  Fun.protect
    ~finally:(fun () -> rm_rf dir)
    (fun () ->
      let c = Cache.create ~dir in
      let k = Cache.key "fuzz-hammer" in
      Cache.store c ~key:k ~request ~payload;
      let worker d =
        Domain.spawn (fun () ->
            let rng = Rng.create (seed + (d * 1_000_003)) in
            let bad = ref None in
            for i = 1 to 250 do
              match
                match Rng.int rng 4 with
                | 0 -> Cache.store c ~key:k ~request ~payload
                | 1 -> write_raw (Cache.path c ~key:k) "{garbage"
                | 2 -> Cache.invalidate c ~key:k
                | _ ->
                  if not (payload_ok (Cache.find c ~key:k)) then
                    failwith "wrong payload observed"
              with
              | () -> ()
              | exception ex ->
                if !bad = None then
                  bad :=
                    Some
                      (Printf.sprintf "domain %d iteration %d: %s" d i
                         (Printexc.to_string ex))
            done;
            !bad)
      in
      let domains = List.init 4 worker in
      let errors = List.filter_map Domain.join domains in
      match errors with
      | [] ->
        Cache.store c ~key:k ~request ~payload;
        if Cache.find c ~key:k <> Some payload then
          Error "cache unusable after hammer"
        else Ok ()
      | e :: _ -> Error e)

let cache_faults ~seed =
  run_checks
    [
      ("cache corrupt-entry recovery", cache_recovery);
      ("cache invalidate idempotent", cache_invalidate_idempotent);
      ("cache multi-domain hammer", cache_hammer ~seed);
    ]

(* --- serve faults ------------------------------------------------------- *)

let job ?(dyn = 2_000) id =
  match Request.to_json (Request.v ~dyn_target:dyn "tiny") with
  | Json.Obj members -> Json.to_string (Json.Obj (("id", Json.Int id) :: members))
  | _ -> assert false

(* Run one JSONL stream through Server.serve_channel via temp files,
   exactly as the CLI does over pipes. [input] is raw bytes (some
   checks need missing newlines). *)
let serve_raw ?cfg ?stop ?journal ?manifest input =
  let inp = Filename.temp_file "dise-fuzz-serve-in" ".jsonl" in
  let out = Filename.temp_file "dise-fuzz-serve-out" ".jsonl" in
  Fun.protect
    ~finally:(fun () ->
      (try Sys.remove inp with Sys_error _ -> ());
      try Sys.remove out with Sys_error _ -> ())
    (fun () ->
      write_raw inp input;
      let ic = open_in_bin inp in
      let oc = open_out_bin out in
      let summary =
        Fun.protect
          ~finally:(fun () ->
            close_in_noerr ic;
            close_out_noerr oc)
          (fun () ->
            let cfg =
              match cfg with Some c -> c | None -> Serve_config.default ()
            in
            Server.serve_channel (Server.session ?stop ?journal ?manifest cfg) ic oc)
      in
      let contents = read_raw out in
      let lines =
        String.split_on_char '\n' contents
        |> List.filter (fun l -> String.trim l <> "")
      in
      (summary, lines))

let response_shape line =
  match Json.parse line with
  | exception Json.Parse_error msg -> Error ("response not JSON: " ^ msg)
  | doc -> (
    let id = Json.member "id" doc in
    match Json.member "ok" doc with
    | Some (Json.Bool true) -> Ok (id, None)
    | Some (Json.Bool false) -> (
      match Option.bind (Json.member "error" doc) (Json.member "kind") with
      | Some (Json.String kind) -> Ok (id, Some kind)
      | _ -> Error "error response without kind")
    | _ -> Error "response without ok")

let expect_stream ?cfg input expected =
  let _, lines = serve_raw ?cfg input in
  if List.length lines <> List.length expected then
    Error
      (Printf.sprintf "%d responses for %d jobs" (List.length lines)
         (List.length expected))
  else
    let rec go i = function
      | [], [] -> Ok ()
      | line :: ls, (want_id, want_kind) :: ws -> (
        match response_shape line with
        | Error e -> Error (Printf.sprintf "response %d: %s" i e)
        | Ok (id, kind) ->
          if want_id <> None && id <> want_id then
            Error (Printf.sprintf "response %d: out of order (wrong id)" i)
          else if kind <> want_kind then
            Error
              (Printf.sprintf "response %d: kind %s, wanted %s" i
                 (Option.value kind ~default:"ok")
                 (Option.value want_kind ~default:"ok"))
          else go (i + 1) (ls, ws)
        | exception ex -> Error (Printexc.to_string ex))
      | _ -> assert false
    in
    go 0 (lines, expected)

let serve_malformed () =
  expect_stream
    (String.concat "\n" [ job 1; "{this is not json"; job 3 ] ^ "\n")
    [
      (Some (Json.Int 1), None);
      (None, Some "parse");
      (Some (Json.Int 3), None);
    ]

let serve_oversized () =
  let big =
    "{\"id\":2,\"bench\":\"tiny\",\"pad\":\""
    ^ String.make (Server.max_line_bytes + 64) 'x'
    ^ "\"}"
  in
  expect_stream
    (String.concat "\n" [ job 1; big; job 3 ] ^ "\n")
    [
      (Some (Json.Int 1), None);
      (None, Some "parse");
      (Some (Json.Int 3), None);
    ]

let serve_partial_valid () =
  (* final line lacks its newline but is complete JSON: a normal job *)
  expect_stream
    (job 1 ^ "\n" ^ job 2)
    [ (Some (Json.Int 1), None); (Some (Json.Int 2), None) ]

let serve_partial_truncated () =
  (* stream ends mid-job: that line still gets its (error) response *)
  expect_stream
    (job 1 ^ "\n" ^ "{\"id\":2,\"bench\":\"ti")
    [ (Some (Json.Int 1), None); (None, Some "parse") ]

let serve_sigint_drain () =
  let jobs = List.init 40 (fun i -> job ~dyn:(30_000 + i) (i + 1)) in
  let input = String.concat "\n" jobs ^ "\n" in
  let stop = Server.Stop.create () in
  let prev =
    Sys.signal Sys.sigint
      (Sys.Signal_handle (fun _ -> Server.Stop.signal stop))
  in
  Fun.protect
    ~finally:(fun () -> Sys.set_signal Sys.sigint prev)
    (fun () ->
      let pid = Unix.getpid () in
      let killer =
        Domain.spawn (fun () ->
            Unix.sleepf 0.02;
            Unix.kill pid Sys.sigint)
      in
      let summary, lines =
        serve_raw ~stop ~cfg:(Serve_config.of_flags ~jobs:2 ~queue:4 ()) input
      in
      Domain.join killer;
      (* The drain contract: no exception, every emitted response line
         is complete JSON, and responses were emitted in order. The
         signal may land after the last chunk on a fast machine, so
         served <= jobs is the strongest count claim available. *)
      if summary.Server.served <> List.length lines then
        Error
          (Printf.sprintf "summary says %d served but %d lines written"
             summary.Server.served (List.length lines))
      else if summary.Server.served > List.length jobs then
        Error "served more responses than jobs"
      else
        let rec go i = function
          | [] -> Ok ()
          | line :: rest -> (
            match response_shape line with
            | Error e -> Error (Printf.sprintf "response %d: %s" i e)
            | Ok (Some (Json.Int id), _) when id <> i + 1 ->
              Error (Printf.sprintf "response %d carries id %d" i id)
            | Ok _ -> go (i + 1) rest)
        in
        go 0 lines)

let serve_faults ~seed:_ =
  run_checks
    [
      ("serve malformed line", serve_malformed);
      ("serve oversized line", serve_oversized);
      ("serve partial final line (valid)", serve_partial_valid);
      ("serve partial final line (truncated)", serve_partial_truncated);
      ("serve SIGINT drain", serve_sigint_drain);
    ]

(* --- resilience faults --------------------------------------------------- *)

(* Set a chaos directive for the duration of one check. There is no
   unsetenv in the stdlib; the empty string parses to "no chaos". *)
let with_chaos spec f =
  Unix.putenv Resilience.Chaos.env_var spec;
  Fun.protect
    ~finally:(fun () -> Unix.putenv Resilience.Chaos.env_var "")
    f

let count_occurrences needle hay =
  let nl = String.length needle and hl = String.length hay in
  let n = ref 0 in
  if nl > 0 then
    for i = 0 to hl - nl do
      if String.sub hay i nl = needle then incr n
    done;
  !n

(* A poisoned job — one that raises an exception the request layer
   does not recognize — must cost exactly its own slot: one in-order
   [internal] response, batch-mates unharmed, server still serving. *)
let serve_poisoned_job () =
  with_chaos "raise=2" (fun () ->
      expect_stream
        ~cfg:(Serve_config.of_flags ~jobs:2 ~queue:4 ())
        (String.concat "\n" [ job ~dyn:41_001 1; job ~dyn:41_002 2; job ~dyn:41_003 3 ] ^ "\n")
        [
          (Some (Json.Int 1), None);
          (Some (Json.Int 2), Some "internal");
          (Some (Json.Int 3), None);
        ])

(* A stalled job overruns its wall-clock budget and is answered
   [timeout], in order, without losing its slot or its batch-mates.
   The chaos stall burns the budget before the simulator starts, so
   the check is deterministic on any machine. *)
let serve_deadline_overrun () =
  with_chaos "sleep=2:200" (fun () ->
      expect_stream
        ~cfg:(Serve_config.of_flags ~jobs:2 ~queue:4 ~deadline_ms:25 ())
        (String.concat "\n" [ job ~dyn:41_011 1; job ~dyn:41_012 2; job ~dyn:41_013 3 ] ^ "\n")
        [
          (Some (Json.Int 1), None);
          (Some (Json.Int 2), Some "timeout");
          (Some (Json.Int 3), None);
        ])

(* Admission shedding: with the high-water mark below the chunk's
   cumulative work, the first job is admitted and the rest are
   answered [overloaded] without executing. *)
let serve_shedding () =
  let input = String.concat "\n" (List.init 4 (fun i -> job ~dyn:2_000 (i + 1))) ^ "\n" in
  let summary, _ =
    serve_raw
      ~cfg:(Serve_config.of_flags ~jobs:2 ~queue:4 ~shed_above:2_500 ())
      input
  in
  if summary.Server.shed <> 3 then
    Error (Printf.sprintf "%d jobs shed, wanted 3" summary.Server.shed)
  else
    expect_stream
      ~cfg:(Serve_config.of_flags ~jobs:2 ~queue:4 ~shed_above:2_500 ())
      input
      [
        (Some (Json.Int 1), None);
        (Some (Json.Int 2), Some "overloaded");
        (Some (Json.Int 3), Some "overloaded");
        (Some (Json.Int 4), Some "overloaded");
      ]

(* Trip the result-cache breaker by making every store fail: a
   regular file planted where the cache wants its two-hex-char
   subdirectory makes the entry path unusable (works for root too,
   unlike a chmod). The server must keep answering ok (degraded);
   the breaker must trip, be visible in the manifest record, and
   close again after a successful half-open probe. *)
let serve_breaker_trip_and_recover () =
  let dir = temp_dir "dise-fuzz-breaker" in
  let prev_cache = Request.disk_cache () in
  let prev_breaker = Request.cache_breaker () in
  Fun.protect
    ~finally:(fun () ->
      Request.set_cache_breaker prev_breaker;
      Request.set_disk_cache prev_cache;
      rm_rf dir)
    (fun () ->
      let c = Cache.create ~dir in
      let dyns = List.init 6 (fun i -> 41_021 + i) in
      let block_paths =
        List.sort_uniq compare
          (List.map
             (fun d ->
               let key = Request.key (Request.v ~dyn_target:d "tiny") in
               Filename.dirname (Cache.path c ~key))
             dyns)
      in
      List.iter (fun p -> write_raw p "not a directory") block_paths;
      Request.set_disk_cache (Some c);
      let b = Resilience.Breaker.create ~threshold:2 ~cooldown_s:0.05 () in
      Request.set_cache_breaker (Some b);
      let buf = Buffer.create 256 in
      let manifest = Dise_telemetry.Manifest.to_buffer buf in
      let input =
        String.concat "\n" (List.mapi (fun i d -> job ~dyn:d (i + 1)) dyns)
        ^ "\n"
      in
      let summary, lines =
        serve_raw ~manifest
          ~cfg:(Serve_config.of_flags ~jobs:2 ~queue:6 ())
          input
      in
      let all_ok =
        List.for_all
          (fun l -> match response_shape l with Ok (_, None) -> true | _ -> false)
          lines
      in
      if summary.Server.errors <> 0 || not all_ok then
        Error "server did not keep answering ok while the cache was sick"
      else if Resilience.Breaker.trips b < 1 then
        Error "breaker never tripped"
      else if not (Resilience.Breaker.blocked b) then
        Error "breaker closed while every store still fails"
      else if count_occurrences "serve_summary" (Buffer.contents buf) <> 1 then
        Error "no serve_summary manifest record"
      else if count_occurrences "\"breaker\"" (Buffer.contents buf) < 1 then
        Error "manifest record carries no breaker state"
      else begin
        (* Recovery: heal the cache, wait out the cooldown, serve one
           more job; its store is the half-open probe. *)
        List.iter (fun p -> try Sys.remove p with Sys_error _ -> ()) block_paths;
        Unix.sleepf 0.06;
        let _, lines =
          serve_raw
            ~cfg:(Serve_config.of_flags ~jobs:1 ~queue:1 ())
            (job ~dyn:41_031 7 ^ "\n")
        in
        match List.map response_shape lines with
        | [ Ok (_, None) ] ->
          if Resilience.Breaker.state b <> Resilience.Breaker.Closed then
            Error "breaker did not close after a successful probe"
          else Ok ()
        | _ -> Error "recovery job did not succeed"
      end)

(* Crash-safety: SIGKILL a journalling server mid-batch (after the
   begins are fsynced, before any job finishes — a chaos stall holds
   the batch open), then replay the journal in the parent and assert
   every interrupted job landed in the result cache.

   OCaml 5 forbids [Unix.fork] once any domain has ever been spawned,
   and both the pool and earlier checks spawn domains, so the victim
   server is a fresh process instead: the host executable re-execs
   itself and [journal_child_main] (called first thing by both
   [disesim] and the test runner) diverts the child into the serving
   role before any normal startup runs. *)
let journal_child_env = "DISE_FAULTS_JOURNAL_CHILD"

let journal_child_main () =
  match Sys.getenv_opt journal_child_env with
  | None | Some "" -> ()
  | Some spec ->
    let code =
      try
        match String.split_on_char '|' spec with
        | [ cdir; jdir; inp; out ] ->
          (* Serial (domain-free) journalling server; the inherited
             chaos stall on job 1 holds the batch open so the
             parent's SIGKILL lands mid-execution. *)
          Request.set_disk_cache (Some (Cache.create ~dir:cdir));
          let j = Resilience.Journal.open_ ~dir:jdir in
          let ic = open_in_bin inp and oc = open_out_bin out in
          ignore
            (Server.serve_channel
               (Server.session ~journal:j
                  (Serve_config.of_flags ~jobs:1 ~queue:4 ()))
               ic oc);
          0
        | _ -> 1
      with _ -> 1
    in
    (* [_exit] skips the host's at_exit/flush machinery. *)
    Unix._exit code

let serve_journal_sigkill_replay () =
  let jdir = temp_dir "dise-fuzz-journal" in
  let cdir = temp_dir "dise-fuzz-jcache" in
  let inp = Filename.temp_file "dise-fuzz-journal-in" ".jsonl" in
  let out = Filename.temp_file "dise-fuzz-journal-out" ".jsonl" in
  let prev_cache = Request.disk_cache () in
  Fun.protect
    ~finally:(fun () ->
      Request.set_disk_cache prev_cache;
      rm_rf jdir;
      rm_rf cdir;
      (try Sys.remove inp with Sys_error _ -> ());
      try Sys.remove out with Sys_error _ -> ())
    (fun () ->
      let dyns = [ 41_041; 41_042; 41_043 ] in
      write_raw inp
        (String.concat "\n" (List.mapi (fun i d -> job ~dyn:d (i + 1)) dyns)
        ^ "\n");
      let exe = Sys.executable_name in
      let spec = String.concat "|" [ cdir; jdir; inp; out ] in
      Unix.putenv journal_child_env spec;
      Unix.putenv Resilience.Chaos.env_var "sleep=1:5000";
      let devnull = Unix.openfile "/dev/null" [ Unix.O_RDONLY ] 0 in
      let pid =
        Fun.protect
          ~finally:(fun () ->
            Unix.close devnull;
            Unix.putenv journal_child_env "";
            Unix.putenv Resilience.Chaos.env_var "")
          (fun () ->
            Unix.create_process exe [| exe |] devnull Unix.stdout Unix.stderr)
      in
      begin
        let jfile = Resilience.Journal.file ~dir:jdir in
        let deadline = Unix.gettimeofday () +. 10. in
        let rec wait_for_begins () =
          if Unix.gettimeofday () > deadline then false
          else if
            Sys.file_exists jfile
            && count_occurrences "\"begin\"" (read_raw jfile)
               >= List.length dyns
          then true
          else begin
            Unix.sleepf 0.005;
            wait_for_begins ()
          end
        in
        let saw = wait_for_begins () in
        Unix.kill pid Sys.sigkill;
        ignore (Unix.waitpid [] pid);
        if not saw then Error "journal begins never appeared"
        else begin
          let pending = Resilience.Journal.pending ~dir:jdir in
          if List.length pending <> List.length dyns then
            Error
              (Printf.sprintf "%d pending jobs after SIGKILL, wanted %d"
                 (List.length pending) (List.length dyns))
          else begin
            Request.set_disk_cache (Some (Cache.create ~dir:cdir));
            let replayed = Server.replay_journal ~jobs:2 ~dir:jdir () in
            if replayed <> List.length dyns then
              Error
                (Printf.sprintf "replayed %d jobs, wanted %d" replayed
                   (List.length dyns))
            else begin
              let c = Cache.create ~dir:cdir in
              let missing =
                List.filter
                  (fun (_, doc) ->
                    match Request.of_json doc with
                    | Ok req -> Cache.find c ~key:(Request.key req) = None
                    | Error _ -> true)
                  pending
              in
              if missing <> [] then
                Error
                  (Printf.sprintf
                     "%d replayed jobs missing from the result cache"
                     (List.length missing))
              else Ok ()
            end
          end
        end
      end)

let resilience_faults ~seed:_ =
  run_checks
    [
      ("serve poisoned job isolated", serve_poisoned_job);
      ("serve deadline overrun", serve_deadline_overrun);
      ("serve load shedding", serve_shedding);
      ("cache breaker trip and recovery", serve_breaker_trip_and_recover);
      ("journal SIGKILL replay", serve_journal_sigkill_replay);
    ]

(* --- chaos faults ------------------------------------------------------- *)

(* One replayable chaos run against a 3-worker tier: lose a heartbeat,
   gray-stall one worker (hedge), tear a frame mid-stream (torn-tail
   respawn), then kill a worker permanently (failover). The tier's
   contract under all of it: every request answered exactly once, in
   order, all ok — and the whole run deterministic, so two executions
   of the same schedule produce the same normalized response stream
   and the same degraded topology. *)
let chaos_jobs = 60

let chaos_run ~seed () =
  let sched =
    match
      Chaos_sched.of_json
        (Json.Obj
           [
             ("record", Json.String "chaos_schedule");
             ("seed", Json.Int seed);
             ( "events",
               Json.List
                 [
                   Json.Obj
                     [
                       ("after", Json.Int 2);
                       ("action", Json.String "drop_ping");
                       ("shard", Json.Int 1);
                     ];
                   Json.Obj
                     [
                       ("after", Json.Int 10);
                       ("action", Json.String "stall");
                       ("shard", Json.Int 1);
                       ("ms", Json.Int 500);
                     ];
                   Json.Obj
                     [
                       ("after", Json.Int 20);
                       ("action", Json.String "torn");
                       ("shard", Json.Int 2);
                     ];
                   Json.Obj
                     [
                       ("after", Json.Int 40);
                       ("action", Json.String "kill");
                       ("shard", Json.Int 0);
                       ("permanent", Json.Bool true);
                     ];
                 ] );
           ])
    with
    | Ok s -> s
    | Error d -> failwith (Dise_isa.Diag.to_string d)
  in
  let root = temp_dir "dise-fuzz-chaos" in
  Fun.protect
    ~finally:(fun () -> rm_rf root)
    (fun () ->
      let inp = Filename.concat root "in.jsonl" in
      let out = Filename.concat root "out.jsonl" in
      (* distinct dyn targets: distinct cache keys, so jobs spread
         across the ring instead of collapsing onto one shard *)
      let input =
        String.concat "\n"
          (List.init chaos_jobs (fun i -> job ~dyn:(50_000 + i) (i + 1)))
        ^ "\n"
      in
      write_raw inp input;
      let cfg =
        Serve_config.of_flags ~workers:3 ~jobs:1
          ~journal:(Filename.concat root "journal")
          ~heartbeat_ms:100 ~suspect_misses:2 ()
      in
      let ic = open_in_bin inp in
      let oc = open_out_bin out in
      let summary =
        Fun.protect
          ~finally:(fun () ->
            close_in_noerr ic;
            close_out_noerr oc)
          (fun () ->
            Dise_service.Coordinator.run_channel
              ~chaos:(Chaos_sched.hook sched) cfg ic oc)
      in
      let lines =
        String.split_on_char '\n' (read_raw out)
        |> List.filter (fun l -> String.trim l <> "")
      in
      (* The normalized projection: (id, outcome) in emission order.
         Timings vary run to run; identity and order must not. *)
      let normalized =
        List.map
          (fun line ->
            match response_shape line with
            | Ok (id, kind) -> (id, kind)
            | Error e -> failwith e)
          lines
      in
      (summary, normalized))

let serve_chaos_exactly_once ~seed () =
  let summary, normalized = chaos_run ~seed () in
  let expected =
    List.init chaos_jobs (fun i -> (Some (Json.Int (i + 1)), None))
  in
  if List.length normalized <> chaos_jobs then
    Error
      (Printf.sprintf "%d responses for %d jobs" (List.length normalized)
         chaos_jobs)
  else if normalized <> expected then Error "responses out of order or not ok"
  else if summary.Server.served <> chaos_jobs then
    Error
      (Printf.sprintf "summary served %d, wanted %d" summary.Server.served
         chaos_jobs)
  else if summary.Server.errors <> 0 then
    Error (Printf.sprintf "summary reports %d errors" summary.Server.errors)
  else Ok ()

let serve_chaos_deterministic ~seed () =
  let _, first = chaos_run ~seed () in
  let _, second = chaos_run ~seed () in
  if first <> second then
    Error "two runs of the same schedule diverged (normalized responses)"
  else Ok ()

let chaos_faults ~seed =
  run_checks
    [
      ("serve chaos exactly-once", serve_chaos_exactly_once ~seed);
      ("serve chaos deterministic replay", serve_chaos_deterministic ~seed);
    ]

let run_all ~seed =
  merge
    (merge (cache_faults ~seed) (serve_faults ~seed))
    (resilience_faults ~seed)
