module Json = Dise_telemetry.Json
module Diag = Dise_isa.Diag
module Rng = Dise_workload.Rng
module Coordinator = Dise_service.Coordinator

type action =
  | Kill of { shard : int; permanent : bool }
  | Stall of { shard : int; ms : int }
  | Torn of { shard : int }
  | Drop_ping of { shard : int }
  | Suspect of { shard : int }
  | Truncate_journal of { shard : int }

type event = { after : int; action : action }

type t = {
  seed : int;
  events : event list;
  rng : Rng.t;  (* drawn in event order: the replay determinism anchor *)
  mutable fired : bool array;  (* indexed like [events] *)
}

let seed t = t.seed
let events t = t.events

let parse_error msg =
  Error (Diag.Parse { source = "chaos_schedule"; line = 0; msg })

let event_of_json i j =
  let err msg = parse_error (Printf.sprintf "event %d: %s" i msg) in
  let int_m name =
    match Json.member name j with Some (Json.Int v) -> Some v | _ -> None
  in
  match int_m "after" with
  | None -> err "missing or non-integer \"after\""
  | Some after when after < 0 -> err "\"after\" must be >= 0"
  | Some after -> (
    match int_m "shard" with
    | None -> err "missing or non-integer \"shard\""
    | Some shard when shard < 0 -> err "\"shard\" must be >= 0"
    | Some shard -> (
      match Json.member "action" j with
      | Some (Json.String "kill") ->
        let permanent =
          match Json.member "permanent" j with
          | Some (Json.Bool b) -> b
          | _ -> false
        in
        Ok { after; action = Kill { shard; permanent } }
      | Some (Json.String "stall") -> (
        match int_m "ms" with
        | Some ms when ms > 0 -> Ok { after; action = Stall { shard; ms } }
        | _ -> err "\"stall\" needs a positive integer \"ms\"")
      | Some (Json.String "torn") -> Ok { after; action = Torn { shard } }
      | Some (Json.String "drop_ping") ->
        Ok { after; action = Drop_ping { shard } }
      | Some (Json.String "suspect") -> Ok { after; action = Suspect { shard } }
      | Some (Json.String "truncate_journal") ->
        Ok { after; action = Truncate_journal { shard } }
      | Some (Json.String a) -> err (Printf.sprintf "unknown action %S" a)
      | _ -> err "missing \"action\""))

let of_json doc =
  match doc with
  | Json.Obj _ ->
    let ( let* ) = Result.bind in
    let* () =
      match Json.member "record" doc with
      | None | Some (Json.String "chaos_schedule") -> Ok ()
      | Some _ -> parse_error "record must be \"chaos_schedule\""
    in
    let* seed =
      match Json.member "seed" doc with
      | Some (Json.Int s) -> Ok s
      | None -> Ok 0
      | Some _ -> parse_error "seed must be an integer"
    in
    let* events =
      match Json.member "events" doc with
      | Some (Json.List evs) ->
        let rec decode i acc = function
          | [] -> Ok (List.rev acc)
          | j :: rest -> (
            match event_of_json i j with
            | Ok e -> decode (i + 1) (e :: acc) rest
            | Error d -> Error d)
        in
        decode 0 [] evs
      | _ -> parse_error "missing \"events\" list"
    in
    Ok
      {
        seed;
        events;
        rng = Rng.create seed;
        fired = Array.make (List.length events) false;
      }
  | _ -> parse_error "chaos schedule must be a JSON object"

let of_file path =
  match open_in_bin path with
  | exception Sys_error msg ->
    Error (Diag.Parse { source = path; line = 0; msg })
  | ic -> (
    let text =
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    in
    match Json.parse text with
    | exception Json.Parse_error msg ->
      Error (Diag.Parse { source = path; line = 0; msg })
    | doc -> of_json doc)

let event_to_json { after; action } =
  let base name shard rest =
    Json.Obj
      ([
         ("after", Json.Int after);
         ("action", Json.String name);
         ("shard", Json.Int shard);
       ]
      @ rest)
  in
  match action with
  | Kill { shard; permanent } ->
    base "kill" shard [ ("permanent", Json.Bool permanent) ]
  | Stall { shard; ms } -> base "stall" shard [ ("ms", Json.Int ms) ]
  | Torn { shard } -> base "torn" shard []
  | Drop_ping { shard } -> base "drop_ping" shard []
  | Suspect { shard } -> base "suspect" shard []
  | Truncate_journal { shard } -> base "truncate_journal" shard []

let to_json t =
  Json.Obj
    [
      ("record", Json.String "chaos_schedule");
      ("seed", Json.Int t.seed);
      ("events", Json.List (List.map event_to_json t.events));
    ]

(* Chop a seed-determined number of bytes off the journal tail — at
   least 1 so the last record is always damaged, at most the length
   of the trailing record plus a few bytes so the file stays mostly
   intact (the point is a torn tail, not an empty journal). *)
let truncate_journals t ~root =
  let rng = Rng.create (t.seed lxor 0x7ea5) in
  List.fold_left
    (fun n { action; _ } ->
      match action with
      | Truncate_journal { shard } -> (
        let path =
          Filename.concat
            (Filename.concat root (Printf.sprintf "worker-%d" shard))
            "journal.jsonl"
        in
        match Unix.stat path with
        | exception Unix.Unix_error _ -> n
        | st when st.Unix.st_size = 0 -> n
        | st ->
          let size = st.Unix.st_size in
          let chop = 1 + Rng.int rng (min size 40) in
          let keep = max 0 (size - chop) in
          let fd = Unix.openfile path [ Unix.O_WRONLY ] 0o644 in
          Fun.protect
            ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
            (fun () -> Unix.ftruncate fd keep);
          n + 1)
      | _ -> n)
    0 t.events

let hook t ~requests =
  let acts = ref [] in
  List.iteri
    (fun i ev ->
      if (not t.fired.(i)) && requests >= ev.after then begin
        t.fired.(i) <- true;
        match ev.action with
        | Kill { shard; permanent } ->
          acts := Coordinator.Chaos_kill { shard; permanent } :: !acts
        | Stall { shard; ms } ->
          acts := Coordinator.Chaos_stall { shard; ms } :: !acts
        | Torn { shard } ->
          (* the cut point is the seeded knob: anywhere from a torn
             header (cut < 4) to an almost-complete body *)
          let cut = 1 + Rng.int t.rng 258 in
          acts := Coordinator.Chaos_torn { shard; cut } :: !acts
        | Drop_ping { shard } ->
          acts := Coordinator.Chaos_drop_ping { shard } :: !acts
        | Suspect { shard } ->
          acts := Coordinator.Chaos_suspect { shard } :: !acts
        | Truncate_journal _ -> () (* startup fault; not a live action *)
      end)
    t.events;
  List.rev !acts
