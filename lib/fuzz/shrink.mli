(** Greedy case minimization.

    Because a {!Case.t} is knobs rather than bytes, shrinking is a
    walk through knob space: repeatedly try the candidate reductions
    (halve the dynamic target, shed cold code, drop productions,
    disable boundary immediates, ...) and keep the first that still
    fails the oracle, until no reduction reproduces the failure or the
    re-check budget runs out. Any failure counts as "still fails" —
    pinning the exact failure string would reject the common case
    where a smaller run trips the same bug one check earlier. *)

val minimize :
  ?mutation:Oracle.mutation -> ?budget:int -> Case.t -> Case.t
(** [minimize c] for a failing [c] returns a case that still fails and
    is minimal under the candidate moves ([budget] caps oracle
    re-runs, default 48). A passing [c] is returned unchanged. *)
