let candidates (c : Case.t) : Case.t list =
  List.concat
    [
      (if c.dyn_target > 2_000 then
         [ { c with dyn_target = max 2_000 (c.dyn_target / 2) } ]
       else []);
      (if c.cold_kb > 0 then [ { c with cold_kb = 0 } ] else []);
      (if c.hot_kb > 1 then [ { c with hot_kb = max 1 (c.hot_kb / 2) } ]
       else []);
      (if c.data_kb > 1 then [ { c with data_kb = max 1 (c.data_kb / 2) } ]
       else []);
      (if c.idiom_pool > 1 then
         [ { c with idiom_pool = max 1 (c.idiom_pool / 2) } ]
       else []);
      (if c.boundary_imms then [ { c with boundary_imms = false } ] else []);
      (match c.mode with
      | Case.Plain when c.n_prods > 1 ->
        [
          { c with n_prods = max 1 (c.n_prods / 2) };
          { c with n_prods = c.n_prods - 1 };
        ]
      | _ -> []);
    ]

let minimize ?mutation ?(budget = 48) c0 =
  let spent = ref 0 in
  let fails c =
    incr spent;
    match Oracle.check ?mutation c with
    | Oracle.Fail _ -> true
    | Oracle.Pass _ -> false
  in
  if not (fails c0) then c0
  else
    let rec go c =
      if !spent >= budget then c
      else
        match List.find_opt fails (candidates c) with
        | Some smaller -> go smaller
        | None -> c
    in
    go c0
