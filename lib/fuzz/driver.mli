(** The fuzzing loop: generate → check → shrink → persist.

    Deterministic in [seed]: the same seed replays the same case
    sequence, which is what lets CI pin a fixed-seed smoke run and
    lets a failure report name the iteration that found it. *)

type found = {
  iteration : int;
  case : Case.t;          (** as generated *)
  shrunk : Case.t;        (** after {!Shrink.minimize} *)
  failure : Oracle.failure;  (** the shrunk case's failure *)
  artifact : string option;  (** repro directory, when [out] was given *)
}

type outcome = Clean of { iterations : int } | Found of found

val fuzz :
  ?mutation:Oracle.mutation ->
  ?out:string ->
  ?log:(string -> unit) ->
  iterations:int ->
  seed:int ->
  unit ->
  outcome
(** Run up to [iterations] random cases; stop at the first failure,
    shrink it, and (when [out] is given) write a repro artifact that
    records the case, the injected mutation if any, and the failure.
    [log] receives progress lines (default: silent). *)

val self_test_iterations : int
(** Iteration budget the self-test gives the fuzzer to catch the
    injected mutation (50). *)

val self_test :
  ?out:string -> ?log:(string -> unit) -> seed:int -> unit ->
  (found, string) result
(** Inject a known-bad engine mutation ({!Oracle.Nop_trigger_every})
    and run the fuzzer against it: [Ok] with the detection report if
    the divergence is caught within {!self_test_iterations}
    iterations, [Error] if the fuzzer let it escape — which means the
    fuzzer itself has lost its teeth. *)

val replay :
  ?log:(string -> unit) -> string ->
  (bool, Dise_isa.Diag.t) result
(** Re-execute an artifact (directory or [case.json] path): re-derive
    the case, re-apply the recorded mutation, re-run the oracle.
    [Ok true] when the recorded verdict is reproduced (a recorded
    failure fails again, a recorded pass passes), [Ok false]
    otherwise. *)
