(** Fault injection against the service layer's documented recovery
    guarantees.

    Cache faults: entries are bit-flipped, truncated, emptied,
    replaced by garbage, or given a stale salt — {!Dise_service.Cache}
    documents that lookups never raise, corrupt entries are retired
    and recomputed, and concurrent recovery is idempotent. A
    multi-domain hammer has several domains find/store/invalidate one
    key while it is repeatedly corrupted, asserting no domain ever
    raises or observes a wrong payload.

    Serve faults: JSONL streams with malformed, oversized, and
    partial lines — {!Dise_service.Server} documents one in-order
    response per job with kind ["parse"] for bad lines and no stream
    desync. The drain check delivers a real SIGINT mid-batch through
    the same handler wiring [disesim serve] installs and asserts the
    loop finishes its chunk, flushes whole response lines, and
    returns.

    Resilience faults (doc/resilience.md): chaos directives
    ({!Dise_service.Resilience.Chaos}) poison or stall individual
    jobs to assert the serve layer's isolation ([internal] responses
    in order), deadline ([timeout]) and shedding ([overloaded])
    guarantees; planted non-directory files make every cache store
    fail to trip the circuit breaker and observe half-open recovery;
    and a forked, journalling server is SIGKILLed mid-batch to assert
    {!Dise_service.Server.replay_journal} re-executes exactly the
    interrupted jobs into the result cache.

    See doc/fuzzing.md for the full fault matrix. *)

type report = {
  passed : int;
  failures : (string * string) list;  (** check name, detail *)
}

val cache_faults : seed:int -> report
val serve_faults : seed:int -> report
val resilience_faults : seed:int -> report

val chaos_faults : seed:int -> report
(** Scheduled chaos against a live 3-worker tier ([disesim fuzz
    --chaos]): a fixed {!Chaos_sched} schedule drops a heartbeat,
    gray-stalls one worker past the hedge threshold, tears a frame
    mid-stream, and permanently kills a shard mid-run — asserting
    every request is still answered exactly once, in order, all ok,
    with zero summary errors; and that two executions of the same
    schedule produce identical normalized response streams. Requires
    {!journal_child_main}'s host-hook discipline (the worker children
    are re-execs of the host executable). *)

val journal_child_main : unit -> unit
(** Host-executable hook for the SIGKILL replay check. If the
    dispatch environment variable is set, diverts this process into
    the journalling-server victim role and [_exit]s; otherwise a
    no-op. Call it first thing from any executable that runs
    {!resilience_faults} — OCaml 5 forbids [Unix.fork] once domains
    have been spawned, so the victim is a re-exec of the host. *)

val run_all : seed:int -> report
(** All of the above; reports are concatenated. *)

val pp_report : Format.formatter -> report -> unit
