(** Fault injection against the service layer's documented recovery
    guarantees.

    Cache faults: entries are bit-flipped, truncated, emptied,
    replaced by garbage, or given a stale salt — {!Dise_service.Cache}
    documents that lookups never raise, corrupt entries are retired
    and recomputed, and concurrent recovery is idempotent. A
    multi-domain hammer has several domains find/store/invalidate one
    key while it is repeatedly corrupted, asserting no domain ever
    raises or observes a wrong payload.

    Serve faults: JSONL streams with malformed, oversized, and
    partial lines — {!Dise_service.Server} documents one in-order
    response per job with kind ["parse"] for bad lines and no stream
    desync. The drain check delivers a real SIGINT mid-batch through
    the same handler wiring [disesim serve] installs and asserts the
    loop finishes its chunk, flushes whole response lines, and
    returns.

    See doc/fuzzing.md for the full fault matrix. *)

type report = {
  passed : int;
  failures : (string * string) list;  (** check name, detail *)
}

val cache_faults : seed:int -> report
val serve_faults : seed:int -> report

val run_all : seed:int -> report
(** All of the above; reports are concatenated. *)

val pp_report : Format.formatter -> report -> unit
