module I = Dise_isa.Insn
module Reg = Dise_isa.Reg
module Op = Dise_isa.Opcode
module Program = Dise_isa.Program
module Diag = Dise_isa.Diag
module Rng = Dise_workload.Rng
module Profile = Dise_workload.Profile
module Codegen = Dise_workload.Codegen
module Pattern = Dise_core.Pattern
module Production = Dise_core.Production
module Prodset = Dise_core.Prodset
module Replacement = Dise_core.Replacement
module Mfi = Dise_acf.Mfi
module Compress = Dise_acf.Compress
module Json = Dise_telemetry.Json

type mode = Plain | Mfi of Mfi.variant | Compressed of int

type t = {
  seed : int;
  dyn_target : int;
  hot_kb : int;
  cold_kb : int;
  data_kb : int;
  idiom_pool : int;
  boundary_imms : bool;
  n_prods : int;
  mode : mode;
}

let scheme_of ix =
  let l = Compress.fig7_schemes in
  List.nth l (((ix mod List.length l) + List.length l) mod List.length l)

let generate rng =
  let mode =
    Rng.weighted rng
      [
        (3.0, Plain);
        (0.8, Mfi Mfi.Dise3);
        (0.8, Mfi Mfi.Dise4);
        (1.4, Compressed (Rng.int rng (List.length Compress.fig7_schemes)));
      ]
  in
  {
    seed = Rng.int rng 0x3FFFFFFF;
    dyn_target = 2_000 + Rng.int rng 10_000;
    hot_kb = 1 + Rng.int rng 3;
    cold_kb = Rng.int rng 3;
    data_kb = 1 + Rng.int rng 7;
    idiom_pool = 1 + Rng.int rng 8;
    boundary_imms = Rng.bool rng;
    n_prods = 1 + Rng.int rng 6;
    mode;
  }

let profile c =
  {
    Profile.name = "fuzz";
    seed = c.seed;
    hot_kb = c.hot_kb;
    cold_kb = c.cold_kb;
    data_kb = c.data_kb;
    load_w = 0.2;
    store_w = 0.12;
    branch_w = 0.18;
    call_w = 0.05;
    random_branch = 0.3;
    idiom_pool = c.idiom_pool;
  }

(* --- boundary-immediate mutation ---------------------------------------- *)

(* The 16-bit edges the encoder and the sign16 reinterpretation pivot
   on. Safe to plant only where the destination is a pure scratch
   register (r3..r12): the generator computes every memory address in
   r13/r14 from r16..r19 and keeps its loop counters in r15/r21, so
   scratch values never feed an address or a loop bound — mutating
   them perturbs data flow identically on every side without risking
   termination or memory safety. *)
let boundary_pool = [| -32768; -32767; -1; 0; 1; 32766; 32767; 0x4000; -0x4000 |]

let scratch_dest = function Reg.R n -> n >= 3 && n <= 12 | _ -> false

let plant_boundaries rng prog =
  List.map
    (function
      | Program.Ins (I.Ropi (op, rs, _, rd))
        when scratch_dest rd && Rng.float rng < 0.25 ->
        Program.Ins (I.Ropi (op, rs, Rng.pick rng boundary_pool, rd))
      | item -> item)
    prog

(* --- random transparent productions ------------------------------------- *)

(* Replacement prefixes must be transparent: they may write only
   dedicated registers ($dr0/$dr1 here — the MFI sets use higher
   numbers, so these never collide), may read memory the application
   itself addresses (byte loads, which cannot misalign), and always
   end by executing the trigger. A DISE-internal branch is allowed
   only as a forward skip to the trigger slot, so the sequence
   terminates whichever way it resolves. *)
let dr0 = Replacement.Rlit (Reg.d 0)
let dr1 = Replacement.Rlit (Reg.d 1)

let safe_prefix_insn rng ~has_rs ~has_imm =
  let alu = [| Op.Add; Op.Sub; Op.Xor; Op.Or_; Op.And_ |] in
  let pool =
    List.concat
      [
        [
          (fun () ->
            Replacement.Ropi
              (Rng.pick rng alu, dr0, Ilit (Rng.range rng (-8) 8), dr0));
          (fun () -> Replacement.Rop (Rng.pick rng alu, dr0, dr1, dr1));
          (fun () -> Replacement.Lui (Ilit (Rng.int rng 1024), dr0));
          (fun () -> Replacement.Nop);
        ];
        (if has_rs then
           [ (fun () -> Replacement.Ropi (Op.Add, Rrs, Ilit 0, dr0)) ]
         else []);
        (if has_imm then
           [ (fun () -> Replacement.Ropi (Op.Add, dr0, Iimm, dr0)) ]
         else []);
        (if has_rs && has_imm then
           (* the application's own effective address, byte-read *)
           [ (fun () -> Replacement.Mem (Op.Ldbu, Rrs, Iimm, dr1)) ]
         else []);
      ]
  in
  (List.nth pool (Rng.int rng (List.length pool))) ()

let random_production rng i =
  let pattern, has_rs, has_imm =
    match Rng.int rng 4 with
    | 0 -> (Pattern.loads, true, true)
    | 1 -> (Pattern.stores, true, true)
    | 2 -> (Pattern.cond_branches, true, false)
    | _ -> (Pattern.any, false, false)
  in
  let pattern =
    if has_imm && Rng.bool rng then
      Pattern.with_imm
        (if Rng.bool rng then Pattern.Imm_neg else Pattern.Imm_nonneg)
        pattern
    else pattern
  in
  let k = Rng.int rng 4 in
  let body = List.init k (fun _ -> safe_prefix_insn rng ~has_rs ~has_imm) in
  let body =
    if k > 0 && Rng.float rng < 0.3 then
      (* skip straight to the trigger slot when $dr0 says so *)
      Replacement.Dbr
        (Rng.pick rng [| Op.Beq; Op.Bne; Op.Bge; Op.Blt |], dr0, k + 1)
      :: body
    else body
  in
  let seq = Array.of_list (body @ [ Replacement.Trigger ]) in
  let prod =
    Production.make
      ~name:(Printf.sprintf "fz%d" i)
      ~priority:(Rng.int rng 2) pattern
      (Production.Direct (100 + i))
  in
  (prod, seq)

let random_prodset c =
  let rng = Rng.create ((c.seed * 31) + 7) in
  let rec go i ps =
    if i >= c.n_prods then ps
    else
      let prod, seq = random_production rng i in
      go (i + 1) (Prodset.add ps prod seq)
  in
  go 0 Prodset.empty

(* --- derivation --------------------------------------------------------- *)

type built = {
  case : t;
  program : Program.t;
  image : Program.Image.t;
  reference : Program.Image.t;
  prodset : Prodset.t;
  init : Dise_machine.Machine.t -> unit;
}

let build c =
  let gen = Codegen.generate ~dyn_target:c.dyn_target (profile c) in
  let program =
    if c.boundary_imms then
      plant_boundaries (Rng.create ((c.seed * 17) + 3)) gen.Codegen.program
    else gen.Codegen.program
  in
  let reference = Program.layout ~base:Codegen.code_base program in
  match c.mode with
  | Plain ->
    {
      case = c;
      program;
      image = reference;
      reference;
      prodset = random_prodset c;
      init = ignore;
    }
  | Mfi variant ->
    {
      case = c;
      program;
      image = reference;
      reference;
      prodset = Mfi.productions_for ~variant reference;
      init =
        (fun m ->
          Mfi.install m ~data_seg:Codegen.data_segment_id
            ~code_seg:Codegen.code_segment_id);
    }
  | Compressed ix ->
    let r = Compress.compress ~scheme:(scheme_of ix) program in
    {
      case = c;
      program = r.Compress.program;
      image = r.Compress.image;
      reference;
      prodset = r.Compress.prodset;
      init = ignore;
    }

(* --- serialization ------------------------------------------------------ *)

let mode_to_json = function
  | Plain -> Json.Obj [ ("kind", Json.String "plain") ]
  | Mfi Mfi.Dise3 ->
    Json.Obj [ ("kind", Json.String "mfi"); ("variant", Json.String "dise3") ]
  | Mfi Mfi.Dise4 ->
    Json.Obj [ ("kind", Json.String "mfi"); ("variant", Json.String "dise4") ]
  | Compressed ix ->
    Json.Obj [ ("kind", Json.String "compressed"); ("scheme", Json.Int ix) ]

let to_json c =
  Json.Obj
    [
      ("seed", Json.Int c.seed);
      ("dyn_target", Json.Int c.dyn_target);
      ("hot_kb", Json.Int c.hot_kb);
      ("cold_kb", Json.Int c.cold_kb);
      ("data_kb", Json.Int c.data_kb);
      ("idiom_pool", Json.Int c.idiom_pool);
      ("boundary_imms", Json.Bool c.boundary_imms);
      ("n_prods", Json.Int c.n_prods);
      ("mode", mode_to_json c.mode);
    ]

let parse_err msg = Error (Diag.Parse { source = "fuzz-case"; line = 0; msg })

let of_json doc =
  let int k =
    match Json.member k doc with
    | Some (Json.Int n) -> Ok n
    | _ -> parse_err (Printf.sprintf "missing or non-integer member %S" k)
  in
  let ( let* ) = Result.bind in
  let* seed = int "seed" in
  let* dyn_target = int "dyn_target" in
  let* hot_kb = int "hot_kb" in
  let* cold_kb = int "cold_kb" in
  let* data_kb = int "data_kb" in
  let* idiom_pool = int "idiom_pool" in
  let* n_prods = int "n_prods" in
  let* boundary_imms =
    match Json.member "boundary_imms" doc with
    | Some (Json.Bool b) -> Ok b
    | _ -> parse_err "missing or non-boolean member \"boundary_imms\""
  in
  let* mode =
    match Json.member "mode" doc with
    | Some m -> (
      match Json.member "kind" m with
      | Some (Json.String "plain") -> Ok Plain
      | Some (Json.String "mfi") -> (
        match Json.member "variant" m with
        | Some (Json.String "dise3") -> Ok (Mfi Mfi.Dise3)
        | Some (Json.String "dise4") -> Ok (Mfi Mfi.Dise4)
        | _ -> parse_err "unknown mfi variant")
      | Some (Json.String "compressed") -> (
        match Json.member "scheme" m with
        | Some (Json.Int ix) -> Ok (Compressed ix)
        | _ -> parse_err "compressed mode needs an integer \"scheme\"")
      | _ -> parse_err "unknown mode kind")
    | None -> parse_err "missing member \"mode\""
  in
  Ok
    {
      seed;
      dyn_target;
      hot_kb;
      cold_kb;
      data_kb;
      idiom_pool;
      boundary_imms;
      n_prods;
      mode;
    }

let summary c =
  let mode =
    match c.mode with
    | Plain -> Printf.sprintf "plain(%d prods)" c.n_prods
    | Mfi Mfi.Dise3 -> "mfi-dise3"
    | Mfi Mfi.Dise4 -> "mfi-dise4"
    | Compressed ix -> "compressed:" ^ (scheme_of ix).Compress.name
  in
  Printf.sprintf
    "seed=%d dyn=%d hot=%dKB cold=%dKB data=%dKB pool=%d boundary=%b %s" c.seed
    c.dyn_target c.hot_kb c.cold_kb c.data_kb c.idiom_pool c.boundary_imms mode
