module Json = Dise_telemetry.Json
module Metrics = Dise_telemetry.Metrics
module Trajectory = Dise_telemetry.Trajectory
module Diag = Dise_isa.Diag
module Asm = Dise_isa.Asm
module Program = Dise_isa.Program
module Machine = Dise_machine.Machine
module Regfile = Dise_machine.Regfile
module Memory = Dise_machine.Memory
module Engine = Dise_core.Engine
module Lang = Dise_core.Lang
module Prodset = Dise_core.Prodset
module Rng = Dise_workload.Rng

type vector = {
  name : string;
  program : string;
  productions : string option;
  drs : (int * int) list;
  max_steps : int;
  signature : string;
}

type cell = {
  vector : string;
  backend : string;
  pass : bool;
  signature : string;
  expected : string;
  steps : int;
  expansions : int;
  wall_s : float;
  error : string option;
}

type report = {
  suite : string;
  cells : cell list;
  vectors : int;
  passed : int;
  wall_s : float;
  p50_ns : int;
  p95_ns : int;
  p99_ns : int;
  fuzz_cases : int;
  fuzz_failures : int;
}

let backends = [ "naive"; "engine-memo"; "engine-hash"; "engine-jit" ]
let default_dir = Filename.concat "test" "arch"

(* Registered once; per-run deltas give each report its own
   quantiles without resetting anyone else's view of the registry. *)
let h_run = Metrics.Histogram.make "conformance_run_ns"

let ( let* ) = Result.bind

let read_file path =
  match open_in_bin path with
  | exception Sys_error msg -> Error (Diag.Cache msg)
  | ic ->
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> Ok (really_input_string ic (in_channel_length ic)))

(* --- manifest ----------------------------------------------------------- *)

let manifest_file ~dir = Filename.concat dir "manifest.json"

let bad ~source msg = Error (Diag.Parse { source; line = 0; msg })

let vector_of_json ~source doc =
  let str k = match Json.member k doc with Some (Json.String s) -> Some s | _ -> None in
  let int k = match Json.member k doc with Some (Json.Int i) -> Some i | _ -> None in
  match (str "name", str "program") with
  | Some name, Some program ->
    let productions =
      match Json.member "productions" doc with
      | Some (Json.String s) -> Some s
      | _ -> None
    in
    let* drs =
      match Json.member "drs" doc with
      | None | Some (Json.List []) -> Ok []
      | Some (Json.List l) ->
        let rec go acc = function
          | [] -> Ok (List.rev acc)
          | Json.List [ Json.Int n; Json.Int v ] :: rest ->
            go ((n, v) :: acc) rest
          | _ -> bad ~source (Printf.sprintf "vector %S: malformed drs" name)
        in
        go [] l
      | Some _ -> bad ~source (Printf.sprintf "vector %S: malformed drs" name)
    in
    Ok
      {
        name;
        program;
        productions;
        drs;
        max_steps = Option.value ~default:1_000_000 (int "max_steps");
        signature = Option.value ~default:"" (str "signature");
      }
  | _ -> bad ~source "vector entry needs string members name and program"

let load_suite ~dir =
  let source = manifest_file ~dir in
  let* text = read_file source in
  let* doc =
    match Json.parse text with
    | doc -> Ok doc
    | exception Json.Parse_error msg -> bad ~source msg
  in
  match Json.member "vectors" doc with
  | Some (Json.List vs) ->
    let rec go acc = function
      | [] -> Ok (List.rev acc)
      | v :: rest ->
        let* vec = vector_of_json ~source v in
        go (vec :: acc) rest
    in
    go [] vs
  | _ -> bad ~source "manifest needs a vectors array"

let vector_to_json v =
  Json.Obj
    [
      ("name", Json.String v.name);
      ("program", Json.String v.program);
      ( "productions",
        match v.productions with Some s -> Json.String s | None -> Json.Null );
      ( "drs",
        Json.List
          (List.map (fun (n, x) -> Json.List [ Json.Int n; Json.Int x ]) v.drs)
      );
      ("max_steps", Json.Int v.max_steps);
      ("signature", Json.String v.signature);
    ]

let save_manifest ~dir vectors =
  let doc =
    Json.Obj
      [
        ("version", Json.Int 1);
        ("vectors", Json.List (List.map vector_to_json vectors));
      ]
  in
  let oc = open_out_bin (manifest_file ~dir) in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (Json.to_string ~indent:true doc ^ "\n"))

(* --- running one vector -------------------------------------------------- *)

let parse_sources ~dir v =
  let path = Filename.concat dir v.program in
  let* text = read_file path in
  let* program = Asm.parse_result ~source:path text in
  let img = Program.layout program in
  let* prodset =
    match v.productions with
    | None -> Ok None
    | Some file ->
      let path = Filename.concat dir file in
      let* text = read_file path in
      let* set = Lang.parse_result ~source:path text in
      Ok (Some (Prodset.resolve_labels (Program.Image.symbol img) set))
  in
  Ok (img, prodset)

(* Fresh machine per (vector, backend) cell: backends must not share
   expander state, and a vector must not see another's memory. *)
let machine_for ~img ~prodset ~drs backend =
  let m =
    match prodset with
    | None -> Machine.create img
    | Some set -> (
      match backend with
      | "naive" -> Machine.create ~expander:(Naive.expander set) img
      | "engine-hash" ->
        Machine.create ~expander:(Engine.expander (Engine.create set)) img
      | "engine-memo" ->
        Machine.create
          ~expander:(Engine.expander (Engine.create ~image:img set))
          img
      | "engine-jit" ->
        let eng = Engine.create ~image:img set in
        let m = Machine.create ~expander:(Engine.expander eng) img in
        Engine.attach_jit ~threshold:2 eng m;
        m
      | other -> invalid_arg ("Conformance: unknown backend " ^ other))
  in
  List.iter (fun (n, x) -> Machine.set_dise_reg m n x) drs;
  m

let signature_of m =
  Printf.sprintf "%d:%d:%08x:%08x" (Machine.exit_code m) (Machine.executed m)
    (Regfile.checksum_arch (Machine.regs m))
    (Memory.checksum (Machine.memory m))

let run_cell ~img ~prodset v backend =
  let t0 = Unix.gettimeofday () in
  let m = machine_for ~img ~prodset ~drs:v.drs backend in
  let outcome =
    match Machine.run ~max_steps:v.max_steps m with
    | _ -> Ok ()
    | exception Machine.Runtime_error msg -> Error ("runtime: " ^ msg)
    | exception Engine.Expansion_error msg -> Error ("expansion: " ^ msg)
    | exception Dise_core.Replacement.Instantiation_error msg ->
      Error ("instantiation: " ^ msg)
  in
  let wall_s = Unix.gettimeofday () -. t0 in
  Metrics.Histogram.observe_s h_run wall_s;
  match outcome with
  | Ok () ->
    {
      vector = v.name;
      backend;
      pass = false (* settled against expected by the caller *);
      signature = signature_of m;
      expected = "";
      steps = Machine.executed m;
      expansions = Machine.expansions m;
      wall_s;
      error = None;
    }
  | Error msg ->
    {
      vector = v.name;
      backend;
      pass = false;
      signature = "";
      expected = "";
      steps = Machine.executed m;
      expansions = Machine.expansions m;
      wall_s;
      error = Some msg;
    }

let run_vector ~dir v =
  match parse_sources ~dir v with
  | Error d ->
    List.map
      (fun backend ->
        {
          vector = v.name;
          backend;
          pass = false;
          signature = "";
          expected = v.signature;
          steps = 0;
          expansions = 0;
          wall_s = 0.;
          error = Some (Diag.to_string d);
        })
      backends
  | Ok (img, prodset) ->
    let reference = run_cell ~img ~prodset v "naive" in
    let reference =
      {
        reference with
        expected = v.signature;
        pass =
          (reference.error = None
          && (v.signature = "" || reference.signature = v.signature));
      }
    in
    (* The optimized backends answer to the naive run of record: when
       naive itself failed or diverged from the manifest, they are
       judged against the manifest signature instead. *)
    let expected =
      if reference.pass && reference.signature <> "" then reference.signature
      else v.signature
    in
    reference
    :: List.map
         (fun backend ->
           let c = run_cell ~img ~prodset v backend in
           {
             c with
             expected;
             pass = c.error = None && expected <> "" && c.signature = expected;
           })
         (List.filter (fun b -> b <> "naive") backends)

(* --- the suite ----------------------------------------------------------- *)

let fuzz_seed = 0xD15E

let run_suite ?(fuzz = 0) ~dir vectors =
  let since = Metrics.Histogram.snapshot h_run in
  let t0 = Unix.gettimeofday () in
  let cells = List.concat_map (run_vector ~dir) vectors in
  let fuzz_failures = ref 0 in
  if fuzz > 0 then begin
    let rng = Rng.create fuzz_seed in
    for _ = 1 to fuzz do
      let case = Case.generate rng in
      match Oracle.check case with
      | Oracle.Pass _ -> ()
      | Oracle.Fail _ -> incr fuzz_failures
    done
  end;
  let wall_s = Unix.gettimeofday () -. t0 in
  let d = Metrics.Histogram.delta ~since (Metrics.Histogram.snapshot h_run) in
  {
    suite = (if fuzz > 0 then "full" else "quick");
    cells;
    vectors = List.length vectors;
    passed = List.length (List.filter (fun c -> c.pass) cells);
    wall_s;
    p50_ns = Metrics.Histogram.quantile d 0.50;
    p95_ns = Metrics.Histogram.quantile d 0.95;
    p99_ns = Metrics.Histogram.quantile d 0.99;
    fuzz_cases = fuzz;
    fuzz_failures = !fuzz_failures;
  }

let update_signatures ~dir vectors =
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | v :: rest ->
      let* img, prodset = parse_sources ~dir v in
      let c = run_cell ~img ~prodset v "naive" in
      (match c.error with
      | Some msg ->
        Error (Diag.Runtime (Printf.sprintf "vector %s: %s" v.name msg))
      | None -> go ({ v with signature = c.signature } :: acc) rest)
  in
  go [] vectors

(* --- rendering ----------------------------------------------------------- *)

let csv_escape s =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n') s then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' s) ^ "\""
  else s

let csv_of_report r =
  let b = Buffer.create 1024 in
  Buffer.add_string b
    "vector,backend,pass,signature,expected,steps,expansions,wall_s,error\n";
  List.iter
    (fun c ->
      Buffer.add_string b
        (Printf.sprintf "%s,%s,%b,%s,%s,%d,%d,%.6f,%s\n" (csv_escape c.vector)
           c.backend c.pass c.signature c.expected c.steps c.expansions
           c.wall_s
           (csv_escape (Option.value ~default:"" c.error))))
    r.cells;
  Buffer.contents b

let html_escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '<' -> Buffer.add_string b "&lt;"
      | '>' -> Buffer.add_string b "&gt;"
      | '&' -> Buffer.add_string b "&amp;"
      | '"' -> Buffer.add_string b "&quot;"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let html_of_report r =
  let b = Buffer.create 4096 in
  let total = List.length r.cells in
  Buffer.add_string b
    "<!doctype html>\n<html><head><meta charset=\"utf-8\">\n\
     <title>disesim conformance report</title>\n\
     <style>\n\
     body { font-family: sans-serif; margin: 2em; }\n\
     table { border-collapse: collapse; }\n\
     th, td { border: 1px solid #ccc; padding: 4px 10px; \
     font-family: monospace; font-size: 13px; }\n\
     th { background: #f0f0f0; }\n\
     tr.fail td { background: #fdd; }\n\
     tr.pass td { background: #efe; }\n\
     </style></head><body>\n";
  Buffer.add_string b
    (Printf.sprintf
       "<h1>disesim conformance: %s suite</h1>\n\
        <p>%d/%d cells passed (%d vectors &times; %d backends) in %.3f s; \
        per-cell run latency p50 %d ns, p95 %d ns, p99 %d ns.</p>\n"
       (html_escape r.suite) r.passed total r.vectors (List.length backends)
       r.wall_s r.p50_ns r.p95_ns r.p99_ns);
  if r.fuzz_cases > 0 then
    Buffer.add_string b
      (Printf.sprintf "<p>Differential fuzz: %d cases, %d failures.</p>\n"
         r.fuzz_cases r.fuzz_failures);
  Buffer.add_string b
    "<table>\n<tr><th>vector</th><th>backend</th><th>pass</th>\
     <th>signature</th><th>expected</th><th>steps</th><th>expansions</th>\
     <th>wall (s)</th><th>error</th></tr>\n";
  List.iter
    (fun c ->
      Buffer.add_string b
        (Printf.sprintf
           "<tr class=\"%s\"><td>%s</td><td>%s</td><td>%s</td><td>%s</td>\
            <td>%s</td><td>%d</td><td>%d</td><td>%.6f</td><td>%s</td></tr>\n"
           (if c.pass then "pass" else "fail")
           (html_escape c.vector) c.backend
           (if c.pass then "yes" else "NO")
           (html_escape c.signature) (html_escape c.expected) c.steps
           c.expansions c.wall_s
           (html_escape (Option.value ~default:"" c.error))))
    r.cells;
  Buffer.add_string b "</table>\n</body></html>\n";
  Buffer.contents b

let trajectory_record ~ts r =
  {
    Trajectory.tool = "conformance";
    suite = r.suite;
    ts;
    commit = Trajectory.commit_id ();
    cells = List.length r.cells;
    passed = r.passed;
    wall_s = r.wall_s;
    p50_ns = r.p50_ns;
    p95_ns = r.p95_ns;
    p99_ns = r.p99_ns;
    extra =
      [
        ("vectors", Json.Int r.vectors);
        ("fuzz_cases", Json.Int r.fuzz_cases);
        ("fuzz_failures", Json.Int r.fuzz_failures);
      ];
  }
