module I = Dise_isa.Insn
module Image = Dise_isa.Program.Image
module Encode = Dise_isa.Encode
module Diag = Dise_isa.Diag
module Machine = Dise_machine.Machine
module Regfile = Dise_machine.Regfile
module Memory = Dise_machine.Memory
module Engine = Dise_core.Engine
module Pipeline = Dise_uarch.Pipeline
module Config = Dise_uarch.Config
module Cpi_stack = Dise_telemetry.Cpi_stack
module Json = Dise_telemetry.Json
module Diffexec = Dise_harness.Diffexec

type mutation = Nop_trigger_every of int

let mutation_to_json (Nop_trigger_every k) =
  Json.Obj [ ("kind", Json.String "nop_trigger_every"); ("k", Json.Int k) ]

let mutation_of_json doc =
  match (Json.member "kind" doc, Json.member "k" doc) with
  | Some (Json.String "nop_trigger_every"), Some (Json.Int k) when k > 0 ->
    Ok (Nop_trigger_every k)
  | _ ->
    Error
      (Diag.Parse
         { source = "fuzz-case"; line = 0; msg = "unknown mutation object" })

(* Corrupt an expander the way a lost-trigger engine bug would: the
   ACF prefix still runs, the application instruction silently
   disappears. Copies the sequence — the engine memoizes and shares
   its arrays, and a mutation that scribbled on them would corrupt
   unrelated expansions, muddying what the fuzzer is being tested
   on. *)
let mutate mutation inner =
  match mutation with
  | None -> inner
  | Some (Nop_trigger_every k) ->
    let count = ref 0 in
    fun ~pc insn ->
      match inner ~pc insn with
      | None -> None
      | Some e ->
        incr count;
        if !count mod k = 0 && Array.length e.Machine.seq > 0 then begin
          let seq = Array.copy e.Machine.seq in
          seq.(Array.length seq - 1) <- I.Nop;
          Some { e with Machine.seq }
        end
        else Some e

type failure = { check : string; detail : string }

type verdict = Pass of { steps : int; expansions : int } | Fail of failure

let fail check fmt = Printf.ksprintf (fun detail -> Error { check; detail }) fmt

(* --- encode roundtrip --------------------------------------------------- *)

let encode_roundtrip image =
  if not (Image.is_dense image) then Ok ()
  else
    match Encode.encode_image_result image with
    | Error d -> fail "encode" "generated image does not encode: %s" (Diag.to_string d)
    | Ok words ->
      let back = Encode.decode_image ~base:(Image.base image) words in
      let insns = Image.raw_insns image in
      let n = Array.length insns in
      let rec go i =
        if i >= n then Ok ()
        else if I.equal insns.(i) back.(i) then go (i + 1)
        else
          fail "encode" "roundtrip mismatch at index %d (0x%x): %s became %s" i
            (Image.addr_of_index image i)
            (I.to_string insns.(i))
            (I.to_string back.(i))
      in
      go 0

(* --- lockstep ----------------------------------------------------------- *)

let origin_str = function
  | Machine.Event.App -> "app"
  | Machine.Event.Rep { rsid; offset; len } ->
    Printf.sprintf "R%d[%d/%d]" rsid offset len

let event_str (e : Machine.Event.t) =
  Printf.sprintf "pc=0x%x %s (%s)" e.pc (I.to_string e.insn) (origin_str e.origin)

let event_eq (a : Machine.Event.t) (b : Machine.Event.t) =
  a.pc = b.pc && I.equal a.insn b.insn && a.origin = b.origin
  && a.expansion_start = b.expansion_start
  && a.mem_addr = b.mem_addr && a.branch = b.branch
  && a.fetched_new_pc = b.fetched_new_pc

let step_budget (c : Case.t) = (c.dyn_target * 50) + 500_000

(* Step the three sides one dynamic instruction at a time, comparing
   the event streams as they happen — a divergence is reported at the
   exact step it first becomes observable, which is what makes the
   shrunk repro readable. *)
let lockstep ~budget (sides : (string * Machine.t) array) =
  let n = Array.length sides in
  let events = Array.make n None in
  let checksum i = Regfile.checksum_arch (Machine.regs (snd sides.(i))) in
  let rec go steps =
    if steps >= budget then Ok steps (* bounded run: all sides agree so far *)
    else begin
      let bad = ref None in
      for i = 0 to n - 1 do
        let name, m = sides.(i) in
        match Machine.step m with
        | e -> events.(i) <- Some e
        | exception ex ->
          events.(i) <- None;
          if !bad = None then
            bad := Some (name, Printexc.to_string ex)
      done;
      match !bad with
      | Some (name, ex) ->
        fail "crash" "side %s raised at step %d: %s" name steps ex
      | None -> (
        let first = Option.get events.(0) in
        let rec cmp i =
          if i >= n then Ok ()
          else
            match (first, Option.get events.(i)) with
            | None, None -> cmp (i + 1)
            | Some a, Some b when event_eq a b -> cmp (i + 1)
            | Some a, Some b ->
              fail "lockstep" "step %d: %s says %s but %s says %s" steps
                (fst sides.(0)) (event_str a)
                (fst sides.(i))
                (event_str b)
            | Some a, None ->
              fail "lockstep" "step %d: %s halted while %s executes %s" steps
                (fst sides.(i))
                (fst sides.(0)) (event_str a)
            | None, Some b ->
              fail "lockstep" "step %d: %s halted while %s executes %s" steps
                (fst sides.(0))
                (fst sides.(i))
                (event_str b)
        in
        match cmp 1 with
        | Error f -> Error f
        | Ok () -> (
          match first with
          | None ->
            (* all halted together: compare final architectural state *)
            let rec final i =
              if i >= n then Ok steps
              else begin
                let m0 = snd sides.(0) and mi = snd sides.(i) in
                if Machine.exit_code m0 <> Machine.exit_code mi then
                  fail "exit" "%s exits %d but %s exits %d" (fst sides.(0))
                    (Machine.exit_code m0)
                    (fst sides.(i))
                    (Machine.exit_code mi)
                else if
                  Memory.checksum (Machine.memory m0)
                  <> Memory.checksum (Machine.memory mi)
                then
                  fail "state" "final memory differs between %s and %s"
                    (fst sides.(0))
                    (fst sides.(i))
                else final (i + 1)
              end
            in
            final 1
          | Some _ ->
            if steps land 4095 = 0 then begin
              let c0 = checksum 0 in
              let rec regs i =
                if i >= n then Ok ()
                else if checksum i <> c0 then
                  fail "state"
                    "architectural registers diverge between %s and %s by \
                     step %d"
                    (fst sides.(0))
                    (fst sides.(i))
                    steps
                else regs (i + 1)
              in
              match regs 1 with Error f -> Error f | Ok () -> go (steps + 1)
            end
            else go (steps + 1)))
    end
  in
  go 0

(* --- the full check ----------------------------------------------------- *)

let ( let* ) = Result.bind

let run_checks ?mutation (b : Case.built) =
  let* () = encode_roundtrip b.Case.image in
  let* () = encode_roundtrip b.Case.reference in
  let prodset = b.Case.prodset in
  let machine expander =
    let m = Machine.create ~expander b.Case.image in
    b.Case.init m;
    m
  in
  let dense_engine () = Engine.create ~image:b.Case.image prodset in
  let budget = step_budget b.Case.case in
  let m_naive = machine (Naive.expander prodset) in
  let m_dense = machine (mutate mutation (Engine.expander (dense_engine ()))) in
  let m_hash = machine (Engine.expander (Engine.create prodset)) in
  (* Fourth side: the superblock JIT over an unmutated engine, with a
     threshold low enough that hot traces compile within the budget —
     every fuzz iteration proves the compiled path produces the same
     event stream, instruction for instruction. (Mutated expanders are
     stateful — the mutation counts calls — and the JIT's compile-ahead
     would perturb the count sequence, so the JIT side is never
     mutated; the mutated dense side still diverges from naive, which
     is what mutation detection relies on.) *)
  let m_jit =
    let eng = dense_engine () in
    let m = machine (Engine.expander eng) in
    Engine.attach_jit ~threshold:2 eng m;
    m
  in
  let* steps =
    lockstep ~budget
      [|
        ("naive", m_naive);
        ("engine-memo", m_dense);
        ("engine-hash", m_hash);
        ("engine-jit", m_jit);
      |]
  in
  let expansions = Machine.expansions m_dense in
  let* () =
    (* Transparent modes drop ACF-inserted instructions and keep the
       trigger (app_semantics); decompression instead reconstructs the
       whole original stream, so every event is kept. *)
    let keep =
      match b.Case.case.Case.mode with
      | Case.Compressed _ -> fun (_ : Machine.Event.t) -> true
      | Case.Plain | Case.Mfi _ -> Diffexec.app_semantics
    in
    match
      Diffexec.run ~max_steps:budget ~keep
        ~left:(Diffexec.side b.Case.reference)
        ~right:
          (Diffexec.side
             ~expander:(mutate mutation (Engine.expander (dense_engine ())))
             ~init:b.Case.init b.Case.image)
        ()
    with
    | Diffexec.Equivalent _ -> Ok ()
    | Diffexec.Diverged _ as o ->
      fail "transparency" "%s" (Format.asprintf "%a" Diffexec.pp_outcome o)
    | exception ex ->
      fail "crash" "transparency run raised: %s" (Printexc.to_string ex)
  in
  let* () =
    let m = machine (mutate mutation (Engine.expander (dense_engine ()))) in
    match Pipeline.run ~max_steps:budget Config.default m with
    | stats ->
      if stats.Dise_uarch.Stats.retired <> Machine.executed m then
        fail "stats" "pipeline retired %d instructions, machine executed %d"
          stats.Dise_uarch.Stats.retired (Machine.executed m)
      else if stats.Dise_uarch.Stats.expansions <> Machine.expansions m then
        fail "stats" "pipeline counted %d expansions, machine performed %d"
          stats.Dise_uarch.Stats.expansions (Machine.expansions m)
      else (
        match
          Cpi_stack.check stats.Dise_uarch.Stats.cpi
            ~cycles:stats.Dise_uarch.Stats.cycles
        with
        | () -> Ok ()
        | exception Failure msg -> fail "stats" "CPI-stack invariant: %s" msg)
    | exception ex ->
      fail "crash" "pipeline run raised: %s" (Printexc.to_string ex)
  in
  Ok (steps, expansions)

let check ?mutation case =
  match Case.build case with
  | exception ex ->
    Fail
      {
        check = "crash";
        detail = "case derivation raised: " ^ Printexc.to_string ex;
      }
  | built -> (
    match run_checks ?mutation built with
    | Ok (steps, expansions) -> Pass { steps; expansions }
    | Error f -> Fail f
    | exception ex ->
      Fail { check = "crash"; detail = "oracle raised: " ^ Printexc.to_string ex })

let pp_verdict ppf = function
  | Pass { steps; expansions } ->
    Format.fprintf ppf "pass (%d lockstep steps, %d expansions)" steps
      expansions
  | Fail { check; detail } -> Format.fprintf ppf "FAIL [%s] %s" check detail
