(** The differential oracle: run one case several ways and cross-check.

    One {!check} performs, in order:

    + {b encode roundtrip} (dense images): the laid-out program must
      survive {!Dise_isa.Encode.encode_image_result} and decode back
      to {!Dise_isa.Insn.equal} instructions — nothing silently wraps;
    + {b lockstep}: three machines execute the same image with the
      reference {!Naive} expander, the image-aware {!Dise_core.Engine}
      (dense flat-array memo when the image is dense), and the
      image-blind engine (hashtable memo) — every event is compared
      as it retires, architectural register checksums are compared
      periodically, and exit codes plus a full memory checksum are
      compared at halt;
    + {b transparency}: {!Dise_harness.Diffexec} kept-stream
      equivalence between the expander-free reference image and the
      expanded run (the paper's semantic-transparency claim);
    + {b stats invariants}: a {!Dise_uarch.Pipeline} run over the
      expanded machine must retire exactly the dynamic instructions
      the functional machine executed, and its CPI stack must sum to
      its cycle count.

    The optional {e mutation} deliberately corrupts the engine-side
    expander (self-test mode): a correct fuzzer must detect it. *)

type mutation =
  | Nop_trigger_every of int
      (** every [k]-th expansion returned by the engine side has its
          final instruction (the trigger slot) replaced by [nop] — a
          classic lost-trigger bug: the ACF payload runs but the
          application instruction does not *)

val mutation_to_json : mutation -> Dise_telemetry.Json.t
val mutation_of_json :
  Dise_telemetry.Json.t -> (mutation, Dise_isa.Diag.t) result

type failure = {
  check : string;  (** ["encode"], ["lockstep"], ["state"], ["exit"],
                       ["transparency"], ["stats"], or ["crash"] *)
  detail : string;
}

type verdict =
  | Pass of { steps : int; expansions : int }
  | Fail of failure

val check : ?mutation:mutation -> Case.t -> verdict
(** Deterministic: equal inputs produce equal verdicts. Never raises —
    an unexpected exception from any side is itself a ["crash"]
    failure. *)

val pp_verdict : Format.formatter -> verdict -> unit
