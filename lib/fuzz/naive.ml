module Machine = Dise_machine.Machine
module Prodset = Dise_core.Prodset
module Replacement = Dise_core.Replacement
module Engine = Dise_core.Engine

let expander prodset ~pc insn =
  match Prodset.lookup prodset insn with
  | None -> None
  | Some (_p, rsid) -> (
    match Prodset.sequence prodset rsid with
    | None ->
      raise (Engine.Expansion_error (Printf.sprintf "unbound sequence R%d" rsid))
    | Some spec -> (
      match Replacement.instantiate spec ~trigger:insn ~pc with
      | seq -> Some { Machine.rsid; seq }
      | exception Replacement.Instantiation_error msg ->
        raise
          (Engine.Expansion_error
             (Printf.sprintf "instantiating R%d at 0x%x: %s" rsid pc msg))))
