(** Fuzz cases: the serializable seed of one differential run.

    A case is a handful of integers and flags — everything else (the
    program, the production set, the machine initialization) is
    derived deterministically from it, which is what makes shrinking
    meaningful (shrink the knobs, re-derive) and repro artifacts tiny
    (a case round-trips through JSON, and {!build} regenerates the
    exact run).

    The knobs are deliberately adversarial: boundary-value immediates
    exercise the 16-bit encode/sign boundaries, [Compressed] cases
    produce sparse codeword-heavy images (the hashtable-memo path of
    the engine), small [idiom_pool]s produce dense repetitive code
    (many expansions per static instruction, stressing the memos). *)

type mode =
  | Plain  (** random transparent productions over the generated program *)
  | Mfi of Dise_acf.Mfi.variant  (** the paper's fault-isolation ACF *)
  | Compressed of int
      (** compress under [List.nth Compress.fig7_schemes i] and run the
          decompression production set *)

type t = {
  seed : int;           (** drives codegen and production generation *)
  dyn_target : int;     (** approximate dynamic length of one run *)
  hot_kb : int;
  cold_kb : int;
  data_kb : int;
  idiom_pool : int;
  boundary_imms : bool;
      (** rewrite some scratch-destination ALU immediates to 16-bit
          boundary values (±32768-adjacent, sign-flip points) *)
  n_prods : int;        (** [Plain] mode: random productions to generate *)
  mode : mode;
}

val generate : Dise_workload.Rng.t -> t
(** Draw a random case. Mode weights favour [Plain] (the widest
    production variety) but keep both engine-memo shapes and the MFI
    productions in steady rotation. *)

val scheme_of : int -> Dise_acf.Compress.scheme
(** Resolve a [Compressed] scheme index (modulo the Figure 7 list). *)

(** Everything one differential run needs, derived from a case. *)
type built = {
  case : t;
  program : Dise_isa.Program.t;
      (** the program the expander sides execute (compressed program in
          [Compressed] mode) *)
  image : Dise_isa.Program.Image.t;  (** its layout *)
  reference : Dise_isa.Program.Image.t;
      (** expander-free equivalent for the transparency check: the
          original uncompressed layout ([==] [image] outside
          [Compressed] mode) *)
  prodset : Dise_core.Prodset.t;
  init : Dise_machine.Machine.t -> unit;
      (** dedicated-register setup (MFI segment ids; no-op otherwise) *)
}

val build : t -> built
(** Deterministic: equal cases build byte-identical runs. *)

val to_json : t -> Dise_telemetry.Json.t
val of_json : Dise_telemetry.Json.t -> (t, Dise_isa.Diag.t) result
val summary : t -> string
(** One-line rendering for logs and reports. *)
