(** Replayable repro artifacts.

    A repro directory contains:

    - [case.json] — the authoritative replay input: the shrunk
      {!Case.t}, the injected {!Oracle.mutation} (if the failure came
      from self-test mode), and the recorded failure. Replay re-derives
      the whole run from this file alone, so reproduction is exact by
      construction;
    - [program.s] — the program the failing sides executed, in
      assembler syntax (informational; regenerate through the case for
      byte-exact layout);
    - [productions.dise] — the production set, in the textual
      production language;
    - [report.txt] — the failure and the case summary, human-first.

    See doc/fuzzing.md for the format and the replay workflow. *)

val write :
  dir:string ->
  case:Case.t ->
  ?mutation:Oracle.mutation ->
  failure:Oracle.failure ->
  unit ->
  string
(** Write (creating [dir], overwriting previous contents) and return
    the artifact directory path. *)

val load :
  string ->
  (Case.t * Oracle.mutation option * Oracle.failure option, Dise_isa.Diag.t)
  result
(** Load an artifact from a directory (or a direct path to a
    [case.json]). Errors are [Diag.Parse] (exit-code class "parse"). *)
