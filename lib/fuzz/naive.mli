(** The reference expander: the production-set semantics with nothing
    between it and the specification.

    No compiled dispatch table, no memoization, no dense-image fast
    path — every fetch goes through {!Dise_core.Prodset.lookup} and a
    fresh {!Dise_core.Replacement.instantiate}. Slow on purpose: the
    differential fuzzer runs it in lockstep with the optimized
    {!Dise_core.Engine} variants, so any divergence pins the bug on an
    optimization rather than on the semantics. *)

val expander : Dise_core.Prodset.t -> Dise_machine.Machine.expander
(** Raises {!Dise_core.Engine.Expansion_error} in the same situations
    the engine does (unbound sequence id, instantiation failure), so
    the two sides fail identically on defective production sets. *)
