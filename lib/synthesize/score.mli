(** Candidate scoring: turn a seed list into measurements and a
    scalar fitness.

    Every candidate is measured twice. The {e static} half
    ({!Dise_acf.Compress.compress_seeded}) yields the total
    compression ratio and — via {!Dise_core.Prodset.footprint} against
    the controller's PT/RT geometry — the hard capacity verdict; it
    always runs locally. The {e timing} half runs the candidate on the
    timing model through the result-cached {!Dise_service.Request}
    API (acf [Synth]), either on this process's domain pool or against
    a running [disesim serve] tier; unfit candidates are never
    simulated. Fitness rewards bytes saved and penalizes execution
    slowdown past a budget — see {!fitness}. *)

type backend =
  | Local of { jobs : int }  (** score on this process's domain pool *)
  | Serve of { path : string }
      (** ship timing runs to the serve tier listening on this
          Unix-socket path (v1 JSONL protocol, one pipelined
          connection per batch); static measurement stays local *)

type outcome = {
  fits : bool;
  ratio : float;  (** (text + dict) / original text *)
  rel : float;  (** cycles / baseline cycles; [nan] when unfit *)
  fitness : float;  (** [neg_infinity] when unfit *)
  fresh : bool;  (** measured by a simulator run this call (not from
                     the request disk cache or the journal) *)
}

val fitness :
  rel_budget:float -> slow_penalty:float -> ratio:float -> rel:float -> float
(** [(1 - ratio) - slow_penalty * max 0 (rel - rel_budget)]: the
    fraction of the binary eliminated, minus a linear penalty once
    decompression overhead exceeds the slowdown budget. *)

type t

val create :
  backend:backend ->
  base:Dise_service.Request.t ->
  entry:Dise_workload.Suite.entry ->
  scheme:Dise_acf.Compress.scheme ->
  corpus:Dise_acf.Compress.corpus ->
  controller:Dise_core.Controller.config ->
  baseline_cycles:int ->
  rel_budget:float ->
  slow_penalty:float ->
  t
(** [base] is the request template (bench, dyn_target, machine,
    controller, jit knobs); scoring swaps in the candidate's [Synth]
    acf, so each candidate caches under its own key. [corpus] must be
    built from [entry]'s program with [scheme]. *)

val score_batch : t -> Dise_acf.Compress.seed list array -> outcome array
(** Score candidates (results in submission order). Local backends
    evaluate whole candidates in parallel on the pool; serve backends
    parallelize the static half locally and pipeline the timing runs
    over one connection. Raises [Failure] on a serve-tier error
    response or a candidate whose compressed image faults — both mean
    a bug, not a bad candidate. *)

val seeds_key : Dise_acf.Compress.seed list -> string
(** Canonical journal/memo key: the compact JSON of the seed list as
    [[blk, start, len]] triples. *)
