module Compress = Dise_acf.Compress
module Controller = Dise_core.Controller
module Prodset = Dise_core.Prodset
module Request = Dise_service.Request
module Pool = Dise_service.Pool
module Suite = Dise_workload.Suite
module Codegen = Dise_workload.Codegen
module Stats = Dise_uarch.Stats
module Json = Dise_telemetry.Json
module Diag = Dise_isa.Diag

type config = {
  bench : string;
  dyn_target : int;
  scheme : Compress.scheme;
  controller : Controller.config;
  rng_seed : int;
  budget : int;
  batch : int;
  max_seeds : int;
  patience : int;
  rel_budget : float;
  slow_penalty : float;
  backend : Score.backend;
  journal : string option;
  progress : string -> unit;
}

let v ?(dyn_target = 300_000) ?(scheme = Compress.full_dise)
    ?(controller = Controller.default_config) ?(rng_seed = 1) ?(budget = 192)
    ?batch ?(max_seeds = 1024) ?(patience = 4) ?(rel_budget = 1.05)
    ?(slow_penalty = 4.0) ?backend ?journal ?(progress = fun _ -> ()) bench =
  let backend =
    match backend with
    | Some b -> b
    | None -> Score.Local { jobs = Pool.default_jobs () }
  in
  (* Fixed default width: the proposal stream must not depend on the
     worker count, so --jobs (like figures --jobs) never changes the
     result, only the wall clock. *)
  let batch = match batch with Some b -> max 1 b | None -> 8 in
  {
    bench;
    dyn_target;
    scheme;
    controller;
    rng_seed;
    budget;
    batch;
    max_seeds;
    patience;
    rel_budget;
    slow_penalty;
    backend;
    journal;
    progress;
  }

type result = {
  seeds : Compress.seed list;
  outcome : Score.outcome;
  compress : Compress.result;
  footprint : Prodset.footprint;
  baseline_cycles : int;
  evaluations : int;
  inherited : int;
  candidates : int;
}

(* Journal <-> outcome. Fitness is recomputed from the journaled
   measurements so a resume with different penalty knobs re-ranks
   rather than trusting stale scores. *)
let measure_of_outcome (o : Score.outcome) =
  { Journal.m_fits = o.Score.fits; m_ratio = o.Score.ratio; m_rel = o.Score.rel }

let outcome_of_measure cfg (m : Journal.measure) =
  if not m.Journal.m_fits then
    {
      Score.fits = false;
      ratio = m.Journal.m_ratio;
      rel = Float.nan;
      fitness = Float.neg_infinity;
      fresh = false;
    }
  else
    {
      Score.fits = true;
      ratio = m.Journal.m_ratio;
      rel = m.Journal.m_rel;
      fitness =
        Score.fitness ~rel_budget:cfg.rel_budget ~slow_penalty:cfg.slow_penalty
          ~ratio:m.Journal.m_ratio ~rel:m.Journal.m_rel;
      fresh = false;
    }

(* Score a batch through the journal memo: known candidates answer
   instantly, distinct unknowns go to the backend once. *)
let score_all cfg scorer journal (proposals : Compress.seed list array) =
  let keys = Array.map Score.seeds_key proposals in
  let pending = Hashtbl.create 16 in
  Array.iteri
    (fun i key ->
      if Journal.find journal ~key = None && not (Hashtbl.mem pending key) then
        Hashtbl.add pending key i)
    keys;
  let fresh_idx =
    Hashtbl.fold (fun _ i acc -> i :: acc) pending [] |> List.sort compare
  in
  let fresh =
    Score.score_batch scorer
      (Array.of_list (List.map (fun i -> proposals.(i)) fresh_idx))
  in
  List.iteri
    (fun k i ->
      Journal.record journal ~key:keys.(i) (measure_of_outcome fresh.(k)))
    fresh_idx;
  Array.map
    (fun key ->
      match Journal.find journal ~key with
      | Some m -> outcome_of_measure cfg m
      | None -> assert false)
    keys

(* Weighted sampling over the mined pool (prefix sums + binary
   search); all randomness flows through the one [Random.State]. *)
let sampler (cands : Miner.candidate array) =
  let n = Array.length cands in
  let cum = Array.make n 0.0 in
  let total = ref 0.0 in
  Array.iteri
    (fun i c ->
      total := !total +. c.Miner.weight;
      cum.(i) <- !total)
    cands;
  fun st ->
    let x = Random.State.float st !total in
    let rec bisect lo hi =
      if lo >= hi then lo
      else
        let mid = (lo + hi) / 2 in
        if cum.(mid) > x then bisect lo mid else bisect (mid + 1) hi
    in
    cands.(bisect 0 (n - 1))

let propose cfg (cands : Miner.candidate array) sample st current =
  let n_cur = List.length current in
  let in_current s = List.mem s current in
  let add cur =
    let rec draw k =
      if k = 0 then
        (* deterministic fallback: the heaviest unused window *)
        Array.find_opt
          (fun c -> not (in_current c.Miner.window.Compress.w_seed))
          cands
        |> Option.map (fun c -> c.Miner.window.Compress.w_seed)
      else
        let s = (sample st).Miner.window.Compress.w_seed in
        if in_current s then draw (k - 1) else Some s
    in
    match draw 16 with Some s -> cur @ [ s ] | None -> cur
  in
  let drop cur =
    let i = Random.State.int st (List.length cur) in
    List.filteri (fun j _ -> j <> i) cur
  in
  if Array.length cands = 0 then current
  else if n_cur = 0 then add current
  else if n_cur >= cfg.max_seeds then
    if Random.State.int st 2 = 0 then drop current else add (drop current)
  else
    match Random.State.int st 4 with
    | 0 -> drop current
    | 1 -> add (drop current)
    | _ -> add current

let run cfg =
  let wprofile =
    match Dise_workload.Profile.find cfg.bench with
    | Some p -> p
    | None -> invalid_arg ("synthesize: unknown benchmark " ^ cfg.bench)
  in
  let entry = Suite.get ~dyn_target:cfg.dyn_target wprofile in
  let base =
    Request.v ~dyn_target:cfg.dyn_target ~controller:cfg.controller cfg.bench
  in
  cfg.progress "measuring baseline";
  let baseline_cycles =
    match Request.run_ext ~entry base with
    | Ok (st, _) -> st.Stats.cycles
    | Error d -> failwith ("synthesize: baseline failed: " ^ Diag.to_string d)
  in
  cfg.progress "collecting fetch profile (sink run, uncached)";
  let tprofile = Dise_telemetry.Profile.create () in
  ignore (Request.run ~entry ~profile:tprofile base : Stats.t);
  let corpus =
    Compress.corpus ~scheme:cfg.scheme entry.Suite.gen.Codegen.program
  in
  let cands =
    Miner.mine ~scheme:cfg.scheme ~corpus ~image:entry.Suite.image
      ~profile:tprofile
  in
  let journal = Journal.load ?path:cfg.journal () in
  let inherited = Journal.size journal in
  cfg.progress
    (Printf.sprintf "%d candidate groups, %d journal entries inherited"
       (Array.length cands) inherited);
  let scorer =
    Score.create ~backend:cfg.backend ~base ~entry ~scheme:cfg.scheme ~corpus
      ~controller:cfg.controller ~baseline_cycles ~rel_budget:cfg.rel_budget
      ~slow_penalty:cfg.slow_penalty
  in
  let st = Random.State.make [| cfg.rng_seed |] in
  let sample = sampler cands in
  let evals = ref 0 in
  let score_counted proposals =
    evals := !evals + Array.length proposals;
    score_all cfg scorer journal proposals
  in
  (* Profile-guided warm start: the longest weight-ordered candidate
     prefix that fits the PT/RT. Hill climbing grows a dictionary one
     move at a time, far too slowly to reach the hundreds of entries
     capacity allows — so the climb starts from the miner's ranking
     (statically near-greedy) and spends its budget refining it
     against the timing model. Capacity cost is monotone in the
     prefix length, so the cut is a binary search over cheap static
     compressions; no simulations are spent here. *)
  let fits_static seeds =
    let r = Compress.compress_seeded corpus ~seeds in
    Prodset.fits
      ~entries_per_block:cfg.controller.Controller.rt_entries_per_block
      ~pt_entries:cfg.controller.Controller.pt_entries
      ~rt_entries:cfg.controller.Controller.rt_entries r.Compress.prodset
  in
  let warm_start =
    let seeds_of n =
      Array.to_list (Array.sub cands 0 n)
      |> List.map (fun c -> c.Miner.window.Compress.w_seed)
    in
    let n_max = min (Array.length cands) cfg.max_seeds in
    if n_max = 0 then []
    else if fits_static (seeds_of n_max) then seeds_of n_max
    else begin
      let rec cut lo hi =
        (* invariant: prefix [lo] fits, prefix [hi] does not *)
        if hi - lo <= 1 then lo
        else
          let mid = (lo + hi) / 2 in
          if fits_static (seeds_of mid) then cut mid hi else cut lo mid
      in
      seeds_of (cut 0 n_max)
    end
  in
  cfg.progress
    (Printf.sprintf "warm start: %d seeds" (List.length warm_start));
  let current = ref warm_start in
  let current_out = ref (score_counted [| warm_start |]).(0) in
  let stale = ref 0 in
  let iter = ref 0 in
  while !evals < cfg.budget && !stale < cfg.patience && Array.length cands > 0
  do
    incr iter;
    let width = min cfg.batch (cfg.budget - !evals) in
    let proposals =
      Array.init width (fun _ -> propose cfg cands sample st !current)
    in
    let outs = score_counted proposals in
    let best = ref (-1) in
    Array.iteri
      (fun i (o : Score.outcome) ->
        if !best < 0 || o.Score.fitness > outs.(!best).Score.fitness then
          best := i)
      outs;
    let o = outs.(!best) in
    if o.Score.fitness > !current_out.Score.fitness +. 1e-9 then begin
      current := proposals.(!best);
      current_out := o;
      stale := 0
    end
    else incr stale;
    cfg.progress
      (Printf.sprintf
         "iter %d: %d/%d evals, dict %d entries, fitness %.4f (ratio %.3f, \
          rel %.3f)"
         !iter !evals cfg.budget
         (List.length !current)
         !current_out.Score.fitness !current_out.Score.ratio
         !current_out.Score.rel)
  done;
  Journal.close journal;
  let compress = Compress.compress_seeded corpus ~seeds:!current in
  let footprint =
    Prodset.footprint
      ~entries_per_block:cfg.controller.Controller.rt_entries_per_block
      compress.Compress.prodset
  in
  {
    seeds = !current;
    outcome = !current_out;
    compress;
    footprint;
    baseline_cycles;
    evaluations = !evals;
    inherited;
    candidates = Array.length cands;
  }

let seed_triple (s : Compress.seed) =
  Json.List
    [
      Json.Int s.Compress.s_blk;
      Json.Int s.Compress.s_start;
      Json.Int s.Compress.s_len;
    ]

let dictionary_json cfg r =
  Json.Obj
    [
      ("v", Json.Int 1);
      ("bench", Json.String cfg.bench);
      ("dyn_target", Json.Int cfg.dyn_target);
      ("scheme", Json.String cfg.scheme.Compress.name);
      ( "search",
        Json.Obj
          [
            ("seed", Json.Int cfg.rng_seed);
            ("budget", Json.Int cfg.budget);
            ("evaluations", Json.Int r.evaluations);
            ("candidates", Json.Int r.candidates);
          ] );
      ("seeds", Json.List (List.map seed_triple r.seeds));
      ("entries", Json.Int (List.length r.compress.Compress.entries));
      ("fitness", Json.Float r.outcome.Score.fitness);
      ("total_ratio", Json.Float r.outcome.Score.ratio);
      ("compression_ratio", Json.Float (Compress.compression_ratio r.compress));
      ("relative_time", Json.Float r.outcome.Score.rel);
      ("baseline_cycles", Json.Int r.baseline_cycles);
      ( "footprint",
        Json.Obj
          [
            ("pt_patterns", Json.Int r.footprint.Prodset.pt_patterns);
            ("rt_blocks", Json.Int r.footprint.Prodset.rt_blocks);
            ("rt_entries", Json.Int r.footprint.Prodset.rt_entries);
          ] );
      ("fits", Json.Bool r.outcome.Score.fits);
    ]

let write_dictionary ~path cfg r =
  let oc = open_out path in
  output_string oc (Json.to_string ~indent:true (dictionary_json cfg r));
  output_char oc '\n';
  close_out oc
