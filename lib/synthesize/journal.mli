(** The synthesis run journal: an append-only JSONL memo of every
    candidate dictionary ever measured, keyed by the candidate's
    canonical seed-list string.

    This is what makes a search {e resumable}: the search itself is
    deterministic given its RNG seed, so rerunning it regenerates the
    same proposals in the same order — and every proposal already in
    the journal is answered from the memo instead of the simulator.
    A killed run therefore fast-forwards to where it died at journal
    speed, and a finished run replays to an identical dictionary.

    Only {e measurements} are journaled (static ratio, capacity
    verdict, relative time), never derived scores: fitness is
    recomputed from the measurements at lookup, so resuming with
    different penalty knobs re-ranks the same physics instead of
    trusting stale arithmetic. A truncated final line (the crash
    case) is skipped on load. *)

type measure = {
  m_fits : bool;  (** candidate respects PT/RT capacity *)
  m_ratio : float;  (** static total ratio, (text + dict) / orig *)
  m_rel : float;
      (** execution-time ratio vs. baseline; [nan] when [m_fits] is
          false (unfit candidates are never simulated) *)
}

type t

val load : ?path:string -> unit -> t
(** [path = None] gives a purely in-memory journal (no persistence).
    Otherwise existing lines are loaded as the memo's initial
    contents; new records append to the file. *)

val find : t -> key:string -> measure option

val record : t -> key:string -> measure -> unit
(** Memoize and (when backed by a file) append + flush one line.
    Re-recording a known key is a no-op, so replayed iterations never
    duplicate lines. *)

val size : t -> int
(** Distinct candidates memoized (what a resume inherits). *)

val close : t -> unit
