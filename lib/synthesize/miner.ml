module Compress = Dise_acf.Compress
module Profile = Dise_telemetry.Profile
module Image = Dise_isa.Program.Image

type candidate = {
  window : Compress.window;
  heat : int;
  static_gain : int;
  weight : float;
}

(* All instructions of a straight-line window execute together, so the
   head PC's fetch count stands for the whole window. *)
let site_heat ~image ~profile (_, _, idx) =
  Profile.fetch_count profile ~pc:(Image.addr_of_index image idx)

let gain (scheme : Compress.scheme) (w : Compress.window) =
  (w.Compress.w_count * ((4 * w.Compress.w_len) - scheme.Compress.codeword_bytes))
  - (w.Compress.w_len * scheme.Compress.dict_entry_bytes)

let mine ~scheme ~corpus ~image ~profile =
  let cands =
    List.filter_map
      (fun (w : Compress.window) ->
        let static_gain = gain scheme w in
        if static_gain <= 0 then None
        else
          let heat =
            List.fold_left
              (fun acc site -> acc + site_heat ~image ~profile site)
              0 w.Compress.w_sites
          in
          (* Savings are the objective; heat only skews the proposal
             order, logarithmically so a single scorching loop cannot
             starve every other group of proposals. *)
          let weight =
            float_of_int static_gain
            *. log (2.0 +. float_of_int (heat * w.Compress.w_len))
          in
          Some { window = w; heat; static_gain; weight })
      (Compress.windows corpus)
  in
  let arr = Array.of_list cands in
  Array.sort
    (fun a b ->
      match compare b.weight a.weight with
      | 0 -> compare a.window.Compress.w_seed b.window.Compress.w_seed
      | c -> c)
    arr;
  arr
