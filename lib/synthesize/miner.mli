(** Candidate mining: rank the compressible windows of a workload by
    how much they matter dynamically.

    The static side comes from {!Dise_acf.Compress.windows} — every
    candidate dictionary group of the (scheme, program) corpus. The
    dynamic side comes from a telemetry {!Dise_telemetry.Profile}
    collected on a baseline run of the same workload: its per-PC
    application-fetch histogram says how often each window's sites
    actually execute. The product is the search's proposal
    distribution — hot, high-savings groups are proposed often, cold
    ones rarely, and groups that could never save a byte are pruned
    outright. *)

type candidate = {
  window : Dise_acf.Compress.window;
  heat : int;
      (** summed dynamic execution count over the window's sites
          (fetch count of each site's head PC in the baseline image) *)
  static_gain : int;
      (** bytes the group would save if it compressed alone:
          [count * (4*len - codeword_bytes) - len * dict_entry_bytes] *)
  weight : float;  (** sampling mass for the search's add moves *)
}

val mine :
  scheme:Dise_acf.Compress.scheme ->
  corpus:Dise_acf.Compress.corpus ->
  image:Dise_isa.Program.Image.t ->
  profile:Dise_telemetry.Profile.t ->
  candidate array
(** Candidates with positive [static_gain], sorted by descending
    [weight] (ties broken by window position, so the pool — and hence
    the whole search — is deterministic). [image] must be the layout
    of the {e uncompressed} program the profile was collected on. *)
