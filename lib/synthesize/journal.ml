module Json = Dise_telemetry.Json

type measure = { m_fits : bool; m_ratio : float; m_rel : float }

type t = {
  path : string option;
  memo : (string, measure) Hashtbl.t;
  mutable oc : out_channel option;
}

let number = function
  | Some (Json.Float f) -> Some f
  | Some (Json.Int i) -> Some (float_of_int i)
  | _ -> None

let measure_of_line line =
  match Json.parse line with
  | exception Json.Parse_error _ -> None (* truncated crash tail *)
  | j -> (
    match
      ( Json.member "seeds" j,
        Json.member "fits" j,
        number (Json.member "ratio" j) )
    with
    | Some (Json.String key), Some (Json.Bool fits), Some ratio ->
      let rel =
        if fits then
          match number (Json.member "rel" j) with
          | Some r -> r
          | None -> Float.nan
        else Float.nan
      in
      Some (key, { m_fits = fits; m_ratio = ratio; m_rel = rel })
    | _ -> None)

let load ?path () =
  let memo = Hashtbl.create 256 in
  (match path with
  | None -> ()
  | Some p when Sys.file_exists p ->
    let ic = open_in p in
    (try
       while true do
         match measure_of_line (input_line ic) with
         | Some (key, m) -> Hashtbl.replace memo key m
         | None -> ()
       done
     with End_of_file -> ());
    close_in ic
  | Some _ -> ());
  { path; memo; oc = None }

let find t ~key = Hashtbl.find_opt t.memo key
let size t = Hashtbl.length t.memo

let line key m =
  let members =
    [
      ("seeds", Json.String key);
      ("fits", Json.Bool m.m_fits);
      ("ratio", Json.Float m.m_ratio);
    ]
    @ if m.m_fits then [ ("rel", Json.Float m.m_rel) ] else []
  in
  Json.to_string (Json.Obj members)

let record t ~key m =
  if not (Hashtbl.mem t.memo key) then begin
    Hashtbl.add t.memo key m;
    match t.path with
    | None -> ()
    | Some p ->
      let oc =
        match t.oc with
        | Some oc -> oc
        | None ->
          let oc =
            open_out_gen [ Open_append; Open_creat; Open_wronly ] 0o644 p
          in
          t.oc <- Some oc;
          oc
      in
      output_string oc (line key m);
      output_char oc '\n';
      flush oc
  end

let close t =
  match t.oc with
  | Some oc ->
    close_out oc;
    t.oc <- None
  | None -> ()
