(** The synthesis search: profile-guided hill climbing over candidate
    dictionaries (the engine behind [disesim synthesize]).

    One run: measure the baseline, collect the fetch profile, mine the
    candidate pool ({!Miner}), seed the climb with a {e warm start} —
    the longest weight-ordered candidate prefix that fits the PT/RT
    (found by binary search over static compressions; hill climbing
    alone grows a dictionary far too slowly to reach the hundreds of
    entries capacity allows) — then climb: each iteration proposes a
    batch of single-move mutations of the current dictionary (add a
    heat-weighted unused window / drop a seed / swap), scores the
    batch ({!Score}, through the journal memo first), and accepts the
    best proposal iff it improves fitness. The climb stops when the
    evaluation budget is spent or [patience] consecutive iterations
    fail to improve.

    {b Determinism.} Given the same configuration the search is a
    pure function of [rng_seed]: proposals come from one
    [Random.State], candidate order is fixed by the miner, batch
    results arrive in submission order, and nothing downstream of a
    measurement depends on where the measurement came from (fresh
    run, request disk cache, or journal). Two runs with the same seed
    therefore write byte-identical dictionaries — and a resumed run
    replays through its journal to the same place. *)

type config = {
  bench : string;
  dyn_target : int;
  scheme : Dise_acf.Compress.scheme;
  controller : Dise_core.Controller.config;
      (** PT/RT geometry: both the hard capacity constraint and the
          decompression-overhead model the timing runs use *)
  rng_seed : int;
  budget : int;  (** maximum candidate evaluations *)
  batch : int;  (** proposals scored per iteration *)
  max_seeds : int;  (** dictionary size cap (search tractability) *)
  patience : int;  (** improvement-free iterations before stopping *)
  rel_budget : float;  (** tolerated execution-time ratio *)
  slow_penalty : float;  (** fitness slope past the budget *)
  backend : Score.backend;
  journal : string option;  (** JSONL memo path ([None]: in-memory) *)
  progress : string -> unit;
}

val v :
  ?dyn_target:int ->
  ?scheme:Dise_acf.Compress.scheme ->
  ?controller:Dise_core.Controller.config ->
  ?rng_seed:int ->
  ?budget:int ->
  ?batch:int ->
  ?max_seeds:int ->
  ?patience:int ->
  ?rel_budget:float ->
  ?slow_penalty:float ->
  ?backend:Score.backend ->
  ?journal:string ->
  ?progress:(string -> unit) ->
  string ->
  config
(** [v bench] with the production defaults: 300K dynamic target,
    [full_dise] scheme, the paper's default controller, seed 1,
    budget 192, batch 8 (a constant, never the worker count — the
    proposal stream must not depend on [--jobs]), 1024 max seeds
    (capacity, not the cap, is the effective bound), patience 4, 5%
    slowdown budget with penalty slope 4, local backend on the
    default pool, no journal, silent progress. *)

type result = {
  seeds : Dise_acf.Compress.seed list;  (** the winning dictionary *)
  outcome : Score.outcome;  (** its measurements and fitness *)
  compress : Dise_acf.Compress.result;  (** runnable compiled form *)
  footprint : Dise_core.Prodset.footprint;
  baseline_cycles : int;
  evaluations : int;  (** proposals scored (deterministic) *)
  inherited : int;  (** journal entries loaded at start (resume depth) *)
  candidates : int;  (** mined pool size *)
}

val run : config -> result
(** Raises [Invalid_argument] on an unknown benchmark and [Failure]
    when a measurement fails (unreachable serve tier, faulting
    candidate image — bugs, not bad candidates). *)

val dictionary_json : config -> result -> Dise_telemetry.Json.t
(** The dictionary document: everything needed to reproduce and apply
    the result (bench, scheme, search parameters, seed list,
    measurements, PT/RT footprint). Deliberately timestamp-free so
    identical searches serialize byte-identically. *)

val write_dictionary : path:string -> config -> result -> unit
(** [dictionary_json] pretty-printed to [path] (trailing newline). *)
