module Compress = Dise_acf.Compress
module Controller = Dise_core.Controller
module Prodset = Dise_core.Prodset
module Request = Dise_service.Request
module Pool = Dise_service.Pool
module Stats = Dise_uarch.Stats
module Json = Dise_telemetry.Json
module Diag = Dise_isa.Diag

type backend = Local of { jobs : int } | Serve of { path : string }

type outcome = {
  fits : bool;
  ratio : float;
  rel : float;
  fitness : float;
  fresh : bool;
}

let fitness ~rel_budget ~slow_penalty ~ratio ~rel =
  (1.0 -. ratio) -. (slow_penalty *. Float.max 0.0 (rel -. rel_budget))

type t = {
  backend : backend;
  base : Request.t;
  entry : Dise_workload.Suite.entry;
  scheme : Compress.scheme;
  corpus : Compress.corpus;
  controller : Controller.config;
  baseline_cycles : int;
  rel_budget : float;
  slow_penalty : float;
}

let create ~backend ~base ~entry ~scheme ~corpus ~controller ~baseline_cycles
    ~rel_budget ~slow_penalty =
  {
    backend;
    base;
    entry;
    scheme;
    corpus;
    controller;
    baseline_cycles;
    rel_budget;
    slow_penalty;
  }

let seeds_key seeds =
  Json.to_string
    (Json.List
       (List.map
          (fun (s : Compress.seed) ->
            Json.List
              [
                Json.Int s.Compress.s_blk;
                Json.Int s.Compress.s_start;
                Json.Int s.Compress.s_len;
              ])
          seeds))

(* Static half: ratio + capacity. [compress_seeded] only reads the
   shared corpus, so these run unsynchronized on pool domains. *)
let static_of t seeds =
  let r = Compress.compress_seeded t.corpus ~seeds in
  let fits =
    Prodset.fits
      ~entries_per_block:t.controller.Controller.rt_entries_per_block
      ~pt_entries:t.controller.Controller.pt_entries
      ~rt_entries:t.controller.Controller.rt_entries r.Compress.prodset
  in
  (fits, Compress.total_ratio r)

let request_of t seeds =
  { t.base with Request.acf = Request.Synth { scheme = t.scheme; seeds } }

let unfit ratio =
  { fits = false; ratio; rel = Float.nan; fitness = Float.neg_infinity;
    fresh = true }

let timed t ~ratio (stats : Stats.t) ~cache_hit =
  let rel = float_of_int stats.Stats.cycles /. float_of_int t.baseline_cycles in
  {
    fits = true;
    ratio;
    rel;
    fitness =
      fitness ~rel_budget:t.rel_budget ~slow_penalty:t.slow_penalty ~ratio ~rel;
    fresh = not cache_hit;
  }

let eval_local t seeds () =
  let fits, ratio = static_of t seeds in
  if not fits then unfit ratio
  else
    match Request.run_ext ~entry:t.entry (request_of t seeds) with
    | Ok (stats, cache_hit) -> timed t ~ratio stats ~cache_hit
    | Error d -> failwith ("synthesize: candidate run failed: " ^ Diag.to_string d)

(* One pipelined exchange on a fresh connection: all request lines
   out, then all responses back (the server answers in order). *)
let serve_exchange ~path (reqs : Request.t array) =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let finally () = try Unix.close fd with Unix.Unix_error _ -> () in
  Fun.protect ~finally (fun () ->
      (try Unix.connect fd (Unix.ADDR_UNIX path)
       with Unix.Unix_error (e, _, _) ->
         failwith
           (Printf.sprintf "synthesize: cannot reach serve tier at %s: %s" path
              (Unix.error_message e)));
      let oc = Unix.out_channel_of_descr fd in
      let ic = Unix.in_channel_of_descr fd in
      Array.iteri
        (fun i req ->
          let members =
            match Request.to_json req with
            | Json.Obj ms -> ms
            | _ -> assert false
          in
          let envelope =
            Json.Obj (("v", Json.Int 1) :: ("id", Json.Int i) :: members)
          in
          output_string oc (Json.to_string envelope);
          output_char oc '\n')
        reqs;
      flush oc;
      (* Half-close: the server's chunk reader batches until EOF (or
         its queue fills), so the write side must end for a batch
         smaller than the server's queue to be served. *)
      Unix.shutdown fd Unix.SHUTDOWN_SEND;
      Array.mapi
        (fun i _ ->
          let line =
            try input_line ic
            with End_of_file ->
              failwith "synthesize: serve tier closed the connection mid-batch"
          in
          let j =
            try Json.parse line
            with Json.Parse_error m ->
              failwith ("synthesize: bad serve response: " ^ m)
          in
          (match Json.member "id" j with
          | Some (Json.Int got) when got = i -> ()
          | _ -> failwith "synthesize: serve response out of order");
          match Json.member "ok" j with
          | Some (Json.Bool true) -> (
            let stats =
              match Json.member "stats" j with
              | Some s -> (
                match Stats.of_json s with
                | Ok st -> st
                | Error m -> failwith ("synthesize: bad serve stats: " ^ m))
              | None -> failwith "synthesize: serve response missing stats"
            in
            let cache_hit =
              match Json.member "cache_hit" j with
              | Some (Json.Bool b) -> b
              | _ -> false
            in
            (stats, cache_hit))
          | _ ->
            let msg =
              match Json.member "error" j with
              | Some e -> (
                match Json.member "message" e with
                | Some (Json.String m) -> m
                | _ -> Json.to_string e)
              | None -> line
            in
            failwith ("synthesize: serve tier error: " ^ msg))
        reqs)

let score_batch t (seedss : Compress.seed list array) =
  match t.backend with
  | Local { jobs } ->
    Pool.run ~jobs (Array.map (fun seeds -> eval_local t seeds) seedss)
  | Serve { path } ->
    let statics =
      Pool.run (Array.map (fun seeds () -> static_of t seeds) seedss)
    in
    let fit_idx =
      Array.to_list statics
      |> List.mapi (fun i (fits, _) -> (i, fits))
      |> List.filter_map (fun (i, fits) -> if fits then Some i else None)
      |> Array.of_list
    in
    let reqs = Array.map (fun i -> request_of t seedss.(i)) fit_idx in
    let timings = serve_exchange ~path reqs in
    let out =
      Array.map (fun (_, ratio) -> unfit ratio) statics
    in
    Array.iteri
      (fun k i ->
        let _, ratio = statics.(i) in
        let stats, cache_hit = timings.(k) in
        out.(i) <- timed t ~ratio stats ~cache_hit)
      fit_idx;
    out
